// Package history records the invocation and response events of register
// operations so that the checkers in internal/atomicity can verify them
// afterwards.
//
// Protocol code never consults the recorder: as in the paper's proofs, the
// global clock exists only for reasoning about runs, not for the processes
// taking steps in them. The recorder uses Go's monotonic clock, so the
// precedence relation between operations ("op1 returned before op2 was
// invoked") is meaningful within a single test process.
package history

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"fastread/internal/types"
)

// OpKind distinguishes reads from writes.
type OpKind int

const (
	// OpWrite is a write invocation.
	OpWrite OpKind = iota + 1
	// OpRead is a read invocation.
	OpRead
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	default:
		return "unknown"
	}
}

// Operation is one recorded register operation.
type Operation struct {
	// ID is a unique, monotonically increasing identifier assigned at
	// invocation time.
	ID int64
	// Process is the invoking client.
	Process types.ProcessID
	// Kind says whether this is a read or a write.
	Kind OpKind
	// Argument is the value written (writes only).
	Argument types.Value
	// Result is the value returned (reads only; ⊥ if the read returned the
	// initial value).
	Result types.Value
	// ResultTS is the timestamp reported by the protocol for the returned
	// value, when available. Checkers treat it as advisory.
	ResultTS types.Timestamp
	// Invoked and Returned are the real-time bounds of the operation.
	Invoked  time.Time
	Returned time.Time
	// Completed is false for operations that never returned (the invoking
	// process crashed or the run ended first).
	Completed bool
	// Failed is true when the operation returned an error rather than a
	// result; failed operations are treated as incomplete by the checkers.
	Failed bool
}

// Precedes reports whether o returned before other was invoked (the paper's
// "op1 precedes op2"). Only meaningful when o completed.
func (o Operation) Precedes(other Operation) bool {
	return o.Completed && !o.Failed && o.Returned.Before(other.Invoked)
}

// ConcurrentWith reports whether neither operation precedes the other.
func (o Operation) ConcurrentWith(other Operation) bool {
	return !o.Precedes(other) && !other.Precedes(o)
}

// String renders the operation compactly.
func (o Operation) String() string {
	switch o.Kind {
	case OpWrite:
		status := "ok"
		if !o.Completed {
			status = "incomplete"
		}
		return fmt.Sprintf("%s:write(%s)=%s", o.Process, o.Argument, status)
	default:
		if !o.Completed {
			return fmt.Sprintf("%s:read()=incomplete", o.Process)
		}
		return fmt.Sprintf("%s:read()=%s@%d", o.Process, o.Result, o.ResultTS)
	}
}

// Recorder collects operations from concurrent clients.
type Recorder struct {
	mu     sync.Mutex
	nextID int64
	ops    map[int64]*Operation
	now    func() time.Time
}

// NewRecorder returns an empty recorder stamping operations with wall time.
func NewRecorder() *Recorder {
	return NewRecorderWithClock(time.Now)
}

// NewRecorderWithClock returns an empty recorder stamping operations with
// the given clock. Deterministic simulation passes the virtual clock's Now
// so that identical seeds produce byte-identical histories.
func NewRecorderWithClock(now func() time.Time) *Recorder {
	return &Recorder{ops: make(map[int64]*Operation), now: now}
}

// Invoke records the start of an operation and returns its id.
func (r *Recorder) Invoke(process types.ProcessID, kind OpKind, argument types.Value) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	id := r.nextID
	r.ops[id] = &Operation{
		ID:       id,
		Process:  process,
		Kind:     kind,
		Argument: argument.Clone(),
		Invoked:  r.now(),
	}
	return id
}

// Return records the successful completion of the operation.
func (r *Recorder) Return(id int64, result types.Value, ts types.Timestamp) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op, ok := r.ops[id]
	if !ok {
		return
	}
	op.Returned = r.now()
	op.Completed = true
	op.Result = result.Clone()
	op.ResultTS = ts
}

// Fail records that the operation returned an error. Failed operations are
// treated like incomplete ones by the checkers (their effects may or may not
// have taken place).
func (r *Recorder) Fail(id int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op, ok := r.ops[id]
	if !ok {
		return
	}
	op.Returned = r.now()
	op.Failed = true
}

// History returns all recorded operations sorted by invocation time.
func (r *Recorder) History() History {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(History, 0, len(r.ops))
	for _, op := range r.ops {
		copied := *op
		copied.Argument = op.Argument.Clone()
		copied.Result = op.Result.Clone()
		out = append(out, copied)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Invoked.Equal(out[j].Invoked) {
			return out[i].ID < out[j].ID
		}
		return out[i].Invoked.Before(out[j].Invoked)
	})
	return out
}

// Len returns the number of recorded operations.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// History is a real-time-ordered sequence of operations.
type History []Operation

// Reads returns the completed read operations.
func (h History) Reads() []Operation {
	out := make([]Operation, 0, len(h))
	for _, op := range h {
		if op.Kind == OpRead && op.Completed && !op.Failed {
			out = append(out, op)
		}
	}
	return out
}

// Writes returns all write operations (including incomplete ones), in
// invocation order.
func (h History) Writes() []Operation {
	out := make([]Operation, 0, len(h))
	for _, op := range h {
		if op.Kind == OpWrite {
			out = append(out, op)
		}
	}
	return out
}

// CompletedWrites returns only the writes that completed successfully.
func (h History) CompletedWrites() []Operation {
	out := make([]Operation, 0, len(h))
	for _, op := range h {
		if op.Kind == OpWrite && op.Completed && !op.Failed {
			out = append(out, op)
		}
	}
	return out
}

// String renders the history one operation per line.
func (h History) String() string {
	s := ""
	for _, op := range h {
		s += op.String() + "\n"
	}
	return s
}
