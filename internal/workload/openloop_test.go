package workload

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"fastread/internal/protoutil"
)

// instantClient completes every operation immediately.
func instantClient(writes, reads *atomic.Int64) OpenLoopClient {
	noop := func(context.Context) error { return nil }
	return OpenLoopClient{
		SubmitWrite: func(ctx context.Context, key int, seq int64) (func(context.Context) error, error) {
			writes.Add(1)
			return noop, nil
		},
		SubmitRead: func(ctx context.Context, key int) (func(context.Context) error, error) {
			reads.Add(1)
			return noop, nil
		},
	}
}

func TestOpenLoopExactAccounting(t *testing.T) {
	var writes, reads atomic.Int64
	cfg := OpenLoopConfig{
		Rate:         2000,
		Duration:     500 * time.Millisecond,
		Seed:         1,
		Keys:         8,
		ZipfS:        1.0,
		ReadFraction: 0.5,
	}
	res, err := RunOpenLoop(context.Background(), cfg, instantClient(&writes, &reads))
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 {
		t.Fatal("no arrivals generated")
	}
	if got := res.Completed + res.Overloaded + res.Timeouts + res.Failed + res.Overrun; got != res.Offered {
		t.Fatalf("accounting leak: offered %d != classified %d (%+v)", res.Offered, got, res)
	}
	if res.Completed != writes.Load()+reads.Load() {
		t.Fatalf("completed %d != submitted %d", res.Completed, writes.Load()+reads.Load())
	}
	if writes.Load() == 0 || reads.Load() == 0 {
		t.Fatalf("mix not exercised: writes=%d reads=%d", writes.Load(), reads.Load())
	}
	if int64(res.Hist.Count()) != res.Completed {
		t.Fatalf("histogram count %d != completed %d", res.Hist.Count(), res.Completed)
	}
	// Fixed-seed Poisson at 2000/s over 0.5s: ~1000 arrivals, loose CI bound.
	if res.Offered < 700 || res.Offered > 1300 {
		t.Fatalf("offered %d far from expected ~1000", res.Offered)
	}
}

func TestOpenLoopFixedRateOfferedExact(t *testing.T) {
	var writes, reads atomic.Int64
	cfg := OpenLoopConfig{
		Rate:         1000,
		Duration:     300 * time.Millisecond,
		Poisson:      false,
		Seed:         2,
		ReadFraction: 1,
	}
	res, err := RunOpenLoop(context.Background(), cfg, instantClient(&writes, &reads))
	if err != nil {
		t.Fatal(err)
	}
	// Fixed 1ms gaps over 300ms: exactly 299 arrivals fit strictly inside
	// the window (the 300th lands exactly on the deadline boundary).
	if res.Offered < 298 || res.Offered > 300 {
		t.Fatalf("fixed-rate offered %d, want 299±1", res.Offered)
	}
}

// TestOpenLoopCoordinatedOmission pins the whole point of the harness: a
// server stall must charge latency to every operation scheduled during the
// stall, not just the one that was in flight.
func TestOpenLoopCoordinatedOmission(t *testing.T) {
	var n atomic.Int64
	client := OpenLoopClient{
		SubmitRead: func(ctx context.Context, key int) (func(context.Context) error, error) {
			if n.Add(1) == 1 {
				// The first SUBMISSION stalls 200ms — modelling a saturated
				// pipeline whose Acquire blocks. Everything scheduled behind
				// it queues at the (single) worker with on-schedule intended
				// timestamps.
				time.Sleep(200 * time.Millisecond)
			}
			return func(context.Context) error { return nil }, nil
		},
	}
	cfg := OpenLoopConfig{
		Rate:         1000,
		Duration:     400 * time.Millisecond,
		Poisson:      false,
		Seed:         3,
		Keys:         1,
		Workers:      1,
		ReadFraction: 1,
	}
	res, err := RunOpenLoop(context.Background(), cfg, client)
	if err != nil {
		t.Fatal(err)
	}
	// ~200 arrivals land during the stall. Each was intended at a 1ms
	// spacing, so their recorded latencies ramp up toward 200ms: the p99
	// must see the stall even though only ONE operation was actually slow.
	if p99 := res.Hist.Quantile(0.99); p99 < 100*time.Millisecond {
		t.Fatalf("p99 %v does not reflect the 200ms stall: coordinated omission", p99)
	}
	// A coordinated-omission-BROKEN recorder (submit-to-complete) would see
	// one 200ms sample and ~n fast ones; the median should stay small either
	// way, sanity-checking we didn't just record everything as slow.
	if p50 := res.Hist.Quantile(0.50); p50 > 250*time.Millisecond {
		t.Fatalf("p50 %v unexpectedly large", p50)
	}
}

func TestOpenLoopClassification(t *testing.T) {
	boom := errors.New("boom")
	var n atomic.Int64
	client := OpenLoopClient{
		SubmitRead: func(ctx context.Context, key int) (func(context.Context) error, error) {
			switch n.Add(1) % 3 {
			case 0:
				return nil, protoutil.ErrOverloaded
			case 1:
				return nil, boom
			default:
				return func(context.Context) error { return nil }, nil
			}
		},
	}
	cfg := OpenLoopConfig{
		Rate:         3000,
		Duration:     200 * time.Millisecond,
		Poisson:      false,
		Seed:         4,
		ReadFraction: 1,
	}
	res, err := RunOpenLoop(context.Background(), cfg, client)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overloaded == 0 || res.Failed == 0 || res.Completed == 0 {
		t.Fatalf("classification missing a bucket: %+v", res)
	}
	if got := res.Completed + res.Overloaded + res.Timeouts + res.Failed + res.Overrun; got != res.Offered {
		t.Fatalf("accounting leak: offered %d != classified %d", res.Offered, got)
	}
}

func TestOpenLoopTimeoutChargedFromIntendedStart(t *testing.T) {
	client := OpenLoopClient{
		SubmitRead: func(ctx context.Context, key int) (func(context.Context) error, error) {
			return func(ctx context.Context) error {
				<-ctx.Done() // never completes; the op deadline fires
				return ctx.Err()
			}, nil
		},
	}
	cfg := OpenLoopConfig{
		Rate:         200,
		Duration:     200 * time.Millisecond,
		Poisson:      false,
		Seed:         5,
		ReadFraction: 1,
		OpTimeout:    50 * time.Millisecond,
	}
	start := time.Now()
	res, err := RunOpenLoop(context.Background(), cfg, client)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeouts != res.Offered || res.Completed != 0 {
		t.Fatalf("every op should time out: %+v", res)
	}
	// Deadlines are intended+50ms, so the whole run drains ~50ms after the
	// window, not Offered×50ms serially.
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("timeouts did not overlap: run took %v", e)
	}
}

func TestOpenLoopConfigValidation(t *testing.T) {
	var w, r atomic.Int64
	cases := []OpenLoopConfig{
		{Rate: 0, Duration: time.Second},
		{Rate: 100, Duration: 0},
		{Rate: 100, Duration: time.Second, ReadFraction: 1.5},
	}
	for i, cfg := range cases {
		if _, err := RunOpenLoop(context.Background(), cfg, instantClient(&w, &r)); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// Missing submit hook for the requested mix.
	if _, err := RunOpenLoop(context.Background(), OpenLoopConfig{Rate: 100, Duration: time.Second, ReadFraction: 0}, OpenLoopClient{}); err == nil {
		t.Error("nil SubmitWrite accepted for a write mix")
	}
}

func TestSweepAndKnee(t *testing.T) {
	// An instant client is never the bottleneck, so every sweep point stays
	// under any sane p99 limit and the knee is the last (highest) rate.
	client := OpenLoopClient{
		SubmitRead: func(ctx context.Context, key int) (func(context.Context) error, error) {
			return func(context.Context) error { return nil }, nil
		},
	}
	cfg := SweepConfig{
		Base:         OpenLoopConfig{Poisson: false, Seed: 6, ReadFraction: 1},
		Rates:        []float64{500, 1000, 2000},
		StepDuration: 150 * time.Millisecond,
	}
	points, err := RunSweep(context.Background(), cfg, client)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].OfferedRate <= points[i-1].OfferedRate {
			t.Fatalf("offered rates not increasing: %+v", points)
		}
	}
	// The limit is generous on purpose: latency is charged from intended
	// arrivals, so on a loaded CI box a single 10ms+ scheduler stall lands
	// in a step's p99 even with an instant client. 250ms is unreachable
	// without a real bottleneck but still rejects a pathological sweep.
	idx, ok := Knee(points, 250*time.Millisecond)
	if !ok || idx != 2 {
		t.Fatalf("instant client: knee = %d ok=%v, want last point", idx, ok)
	}
	// With a 1ns threshold nothing qualifies.
	if _, ok := Knee(points, 0); ok {
		t.Fatal("zero threshold should find no knee")
	}
}

func TestKneeRejectsSheddingPoints(t *testing.T) {
	points := []CurvePoint{
		{OfferedRate: 1000, Goodput: 1000, P99ms: 1},
		{OfferedRate: 2000, Goodput: 1950, P99ms: 2},
		// Shedding 60% of load: p99 over survivors looks fine, but this is
		// not capacity and must not be the knee.
		{OfferedRate: 4000, Goodput: 1600, P99ms: 2},
	}
	idx, ok := Knee(points, 10*time.Millisecond)
	if !ok || idx != 1 {
		t.Fatalf("knee = %d ok=%v, want index 1", idx, ok)
	}
}
