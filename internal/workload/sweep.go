package workload

import (
	"context"
	"fmt"
	"time"
)

// SweepConfig walks offered load upward through Rates, running one open-loop
// step per rate against the same client, and collects the
// throughput-vs-quantile curve the knee finder consumes. Base carries every
// per-step parameter except Rate and Duration.
type SweepConfig struct {
	Base         OpenLoopConfig
	Rates        []float64     // offered rates to visit, ascending
	StepDuration time.Duration // measured window per rate
	Settle       time.Duration // optional pause between steps (lets queues drain)
}

// CurvePoint is one rate step of a sweep, JSON-shaped for BENCH_*.json.
// Quantiles are in milliseconds (float) so the files diff readably.
type CurvePoint struct {
	OfferedRate float64 `json:"offered_rate"`
	Goodput     float64 `json:"goodput"`
	P50ms       float64 `json:"p50_ms"`
	P99ms       float64 `json:"p99_ms"`
	P999ms      float64 `json:"p999_ms"`
	MaxMs       float64 `json:"max_ms"`
	Completed   int64   `json:"completed"`
	Overloaded  int64   `json:"overloaded"`
	Timeouts    int64   `json:"timeouts"`
	Failed      int64   `json:"failed"`
	Overrun     int64   `json:"overrun"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// PointOf condenses one open-loop result into its curve point.
func PointOf(r OpenLoopResult) CurvePoint {
	return CurvePoint{
		OfferedRate: r.OfferedRate(),
		Goodput:     r.Goodput(),
		P50ms:       ms(r.Hist.Quantile(0.50)),
		P99ms:       ms(r.Hist.Quantile(0.99)),
		P999ms:      ms(r.Hist.Quantile(0.999)),
		MaxMs:       ms(r.Hist.Max()),
		Completed:   r.Completed,
		Overloaded:  r.Overloaded,
		Timeouts:    r.Timeouts,
		Failed:      r.Failed,
		Overrun:     r.Overrun,
	}
}

// RunSweep visits each rate in order and returns one curve point per rate.
// Cancelling ctx stops the sweep after the current step; the points gathered
// so far are returned alongside the context error.
func RunSweep(ctx context.Context, cfg SweepConfig, client OpenLoopClient) ([]CurvePoint, error) {
	if len(cfg.Rates) == 0 {
		return nil, fmt.Errorf("workload: sweep needs at least one rate")
	}
	if cfg.StepDuration <= 0 {
		return nil, fmt.Errorf("workload: sweep step duration must be positive, got %v", cfg.StepDuration)
	}
	points := make([]CurvePoint, 0, len(cfg.Rates))
	for _, rate := range cfg.Rates {
		if ctx.Err() != nil {
			return points, ctx.Err()
		}
		step := cfg.Base
		step.Rate = rate
		step.Duration = cfg.StepDuration
		res, err := RunOpenLoop(ctx, step, client)
		if err != nil {
			return points, err
		}
		points = append(points, PointOf(res))
		if cfg.Settle > 0 {
			select {
			case <-time.After(cfg.Settle):
			case <-ctx.Done():
				return points, ctx.Err()
			}
		}
	}
	return points, nil
}

// Knee returns the index of the last sweep point whose p99 stays at or under
// p99Limit AND that actually absorbed its offered load (goodput within 10%
// of offered — a point shedding most of its arrivals has a fine p99 over the
// survivors, which is not capacity). Returns -1, false when even the first
// point is over the limit.
func Knee(points []CurvePoint, p99Limit time.Duration) (int, bool) {
	limit := ms(p99Limit)
	knee := -1
	for i, p := range points {
		if p.P99ms <= limit && p.Goodput >= 0.9*p.OfferedRate {
			knee = i
		}
	}
	return knee, knee >= 0
}
