package workload

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"fastread/internal/atomicity"
	"fastread/internal/fault"
	"fastread/internal/types"
)

// fakeRegister is a trivially linearizable in-process register used to test
// the workload driver itself.
type fakeRegister struct {
	mu    sync.Mutex
	value types.Value
	ts    types.Timestamp
	fail  bool
}

func (f *fakeRegister) Write(_ context.Context, v types.Value) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return errors.New("injected failure")
	}
	f.ts++
	f.value = v.Clone()
	return nil
}

func (f *fakeRegister) Read(_ context.Context) (types.Value, types.Timestamp, int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return nil, 0, 0, errors.New("injected failure")
	}
	return f.value.Clone(), f.ts, 1, nil
}

func TestRunProducesAtomicHistoryAndStats(t *testing.T) {
	reg := &fakeRegister{}
	clients := Clients{
		Writer: reg,
		Readers: []Reader{
			ReaderFunc(reg.Read),
			ReaderFunc(reg.Read),
		},
	}
	cfg := Config{Writes: 20, ReadsPerReader: 30}
	res, err := Run(context.Background(), cfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedWrites != 20 {
		t.Errorf("CompletedWrites = %d", res.CompletedWrites)
	}
	if res.CompletedReads != 60 {
		t.Errorf("CompletedReads = %d", res.CompletedReads)
	}
	if res.FailedOps != 0 {
		t.Errorf("FailedOps = %d", res.FailedOps)
	}
	if res.ReadRounds != 1 {
		t.Errorf("ReadRounds = %f", res.ReadRounds)
	}
	if res.ReadLatency.Count != 60 || res.WriteLatency.Count != 20 {
		t.Errorf("latency counts = %d/%d", res.ReadLatency.Count, res.WriteLatency.Count)
	}
	if res.Throughput <= 0 {
		t.Error("throughput should be positive")
	}
	report, err := atomicity.CheckSWMR(res.History)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK {
		t.Errorf("fake register history not atomic: %s", report)
	}
}

func TestRunAppliesCrashSchedule(t *testing.T) {
	reg := &fakeRegister{}
	var crashed []types.ProcessID
	var mu sync.Mutex
	schedule := fault.NewCrashSchedule(
		fault.CrashEvent{Server: types.Server(1), AfterOps: 1},
		fault.CrashEvent{Server: types.Server(2), AfterOps: 3},
	)
	cfg := Config{
		Writes:         5,
		ReadsPerReader: 0,
		Crashes:        schedule,
		CrashFn: func(p types.ProcessID) {
			mu.Lock()
			crashed = append(crashed, p)
			mu.Unlock()
		},
	}
	if _, err := Run(context.Background(), cfg, Clients{Writer: reg}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(crashed) != 2 {
		t.Fatalf("crashed = %v, want both scheduled servers", crashed)
	}
	if schedule.Pending() != 0 {
		t.Errorf("Pending = %d", schedule.Pending())
	}
}

func TestRunRecordsFailures(t *testing.T) {
	reg := &fakeRegister{fail: true}
	cfg := Config{Writes: 3, ReadsPerReader: 2}
	res, err := Run(context.Background(), cfg, Clients{Writer: reg, Readers: []Reader{reg}})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedWrites != 0 || res.CompletedReads != 0 {
		t.Errorf("completed = %d/%d, want 0/0", res.CompletedWrites, res.CompletedReads)
	}
	if res.FailedOps != 5 {
		t.Errorf("FailedOps = %d, want 5", res.FailedOps)
	}
}

func TestRunNoClients(t *testing.T) {
	if _, err := Run(context.Background(), Config{}, Clients{}); !errors.Is(err, ErrNoClients) {
		t.Errorf("err = %v, want ErrNoClients", err)
	}
}

func TestRunReaderOnly(t *testing.T) {
	reg := &fakeRegister{}
	cfg := Config{ReadsPerReader: 5}
	res, err := Run(context.Background(), cfg, Clients{Readers: []Reader{reg}})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedReads != 5 || res.CompletedWrites != 0 {
		t.Errorf("completed = %d/%d", res.CompletedReads, res.CompletedWrites)
	}
	// All reads of ⊥ must be atomic.
	report, err := atomicity.CheckSWMR(res.History)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK {
		t.Errorf("reader-only history not atomic: %s", report)
	}
}

func TestMakeValuePadding(t *testing.T) {
	v := makeValue("x", 7, 0)
	if string(v) != "x7" {
		t.Errorf("makeValue = %q", v)
	}
	padded := makeValue("x", 7, 10)
	if len(padded) != 10 || string(padded[:2]) != "x7" {
		t.Errorf("padded = %q (len %d)", padded, len(padded))
	}
	long := makeValue("prefix", 123456, 4)
	if string(long) != "prefix123456" {
		t.Errorf("padding shorter than value should be ignored: %q", long)
	}
}

func TestThinkTimeSlowsRun(t *testing.T) {
	reg := &fakeRegister{}
	cfg := Config{Writes: 3, WriterThinkTime: 20 * time.Millisecond}
	start := time.Now()
	if _, err := Run(context.Background(), cfg, Clients{Writer: reg}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("run with think time finished too quickly: %v", elapsed)
	}
}

func TestWriterFuncAdapter(t *testing.T) {
	called := false
	w := WriterFunc(func(context.Context, types.Value) error {
		called = true
		return nil
	})
	if err := w.Write(context.Background(), types.Value("x")); err != nil || !called {
		t.Error("WriterFunc adapter broken")
	}
}
