package workload

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"fastread/internal/protoutil"
	"fastread/internal/stats"
)

// The open-loop generator. A closed-loop harness (Run, above in this
// package) measures "how fast can N blocked workers go" — its workers slow
// down exactly when the system does, so it can never observe queueing
// collapse. An open-loop generator instead schedules arrivals on a clock at
// a target offered rate, independent of how the system is coping, and
// measures each operation's latency from its INTENDED arrival time, not
// from when the generator finally got around to submitting it. That is the
// coordinated-omission discipline: if the system stalls for a second, the
// ~rate×1s operations scheduled during the stall each charge the stall to
// their own latency instead of silently vanishing from the record.

// OpenLoopConfig parameterises one fixed-rate open-loop run.
type OpenLoopConfig struct {
	// Rate is the offered load in operations per second. Required.
	Rate float64
	// Duration is how long arrivals are generated for. Required.
	Duration time.Duration
	// Poisson selects exponential inter-arrival gaps (a large independent
	// client population); false selects perfectly paced fixed gaps.
	Poisson bool
	// Seed pins the arrival and key streams; runs with equal seeds offer
	// an identical schedule.
	Seed int64
	// Keys is the number of distinct registers touched. Default 1.
	Keys int
	// ZipfS is the zipfian popularity exponent across keys; 0 = uniform.
	ZipfS float64
	// ReadFraction in [0,1] is the probability an arrival is a read.
	ReadFraction float64
	// Workers is the number of submitter goroutines arrivals are sharded
	// over (by key, so per-key order is preserved). Default min(Keys,
	// 4×GOMAXPROCS).
	Workers int
	// OpTimeout bounds each operation, measured from its INTENDED arrival —
	// an operation that spends its whole budget queueing times out even if
	// it was submitted late. Default 5s.
	OpTimeout time.Duration
	// Backlog bounds the generator's own pending-arrival queue per worker.
	// When a worker is wedged (e.g. admission control is off and submission
	// blocks), arrivals beyond this bound are counted as Overrun rather
	// than accumulated without bound. Default 65536.
	Backlog int
}

func (c *OpenLoopConfig) normalize() error {
	if c.Rate <= 0 {
		return fmt.Errorf("workload: open-loop rate must be positive, got %g", c.Rate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("workload: open-loop duration must be positive, got %v", c.Duration)
	}
	if c.ReadFraction < 0 || c.ReadFraction > 1 {
		return fmt.Errorf("workload: read fraction %g outside [0,1]", c.ReadFraction)
	}
	if c.Keys <= 0 {
		c.Keys = 1
	}
	if c.Workers <= 0 {
		c.Workers = 4 * runtime.GOMAXPROCS(0)
		if c.Workers > c.Keys {
			c.Workers = c.Keys
		}
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 5 * time.Second
	}
	if c.Backlog <= 0 {
		c.Backlog = 65536
	}
	return nil
}

// OpenLoopClient adapts a store to the generator. Submit functions start an
// asynchronous operation against key (an index in [0, Keys)) and return a
// wait function resolving its completion; seq is a process-unique sequence
// number the client may embed in written values. Both are called
// concurrently from many workers. A submit error fails the operation
// immediately (protoutil.ErrOverloaded is classified as shed, anything else
// as failed).
type OpenLoopClient struct {
	SubmitWrite func(ctx context.Context, key int, seq int64) (wait func(context.Context) error, err error)
	SubmitRead  func(ctx context.Context, key int) (wait func(context.Context) error, err error)
}

// OpenLoopResult is the exact accounting of one run: every generated arrival
// lands in exactly one of Completed, Overloaded, Timeouts, Failed or
// Overrun, so Offered always equals their sum — the property the overload
// tests assert to prove no operation is silently lost.
type OpenLoopResult struct {
	Offered    int64 // arrivals generated on schedule
	Completed  int64 // operations that finished successfully
	Overloaded int64 // shed fast with ErrOverloaded (admission control)
	Timeouts   int64 // exceeded OpTimeout from their intended arrival
	Failed     int64 // any other error
	Overrun    int64 // arrivals the generator itself had to drop (backlog full)

	Elapsed time.Duration    // scheduled window (== config Duration)
	Hist    *stats.Histogram // latency vs intended arrival, completed ops only
}

// OfferedRate returns the realised offered load in ops/sec.
func (r OpenLoopResult) OfferedRate() float64 {
	return float64(r.Offered) / r.Elapsed.Seconds()
}

// Goodput returns completed ops/sec over the scheduled window.
func (r OpenLoopResult) Goodput() float64 {
	return float64(r.Completed) / r.Elapsed.Seconds()
}

// openLoopWorker owns one shard of the keyspace. Completion goroutines of
// the same worker share its histogram under mu; worker count spreads the
// contention.
type openLoopWorker struct {
	queue chan openLoopOp

	mu         sync.Mutex
	hist       *stats.Histogram
	completed  int64
	overloaded int64
	timeouts   int64
	failed     int64
}

type openLoopOp struct {
	key      int
	read     bool
	seq      int64
	intended time.Time
}

func (w *openLoopWorker) account(err error, opCtx context.Context, latency time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch {
	case err == nil:
		w.completed++
		w.hist.Record(latency)
	case errors.Is(err, protoutil.ErrOverloaded):
		w.overloaded++
	case opCtx.Err() != nil && errors.Is(opCtx.Err(), context.DeadlineExceeded):
		w.timeouts++
	default:
		w.failed++
	}
}

// RunOpenLoop drives one fixed-rate open-loop run and returns its exact
// accounting. Cancelling ctx stops arrival generation early; already
// submitted operations still resolve.
func RunOpenLoop(ctx context.Context, cfg OpenLoopConfig, client OpenLoopClient) (OpenLoopResult, error) {
	if err := cfg.normalize(); err != nil {
		return OpenLoopResult{}, err
	}
	if client.SubmitWrite == nil && cfg.ReadFraction < 1 {
		return OpenLoopResult{}, errors.New("workload: write mix requested but SubmitWrite is nil")
	}
	if client.SubmitRead == nil && cfg.ReadFraction > 0 {
		return OpenLoopResult{}, errors.New("workload: read mix requested but SubmitRead is nil")
	}

	workers := make([]*openLoopWorker, cfg.Workers)
	perWorkerBacklog := cfg.Backlog / cfg.Workers
	if perWorkerBacklog < 16 {
		perWorkerBacklog = 16
	}
	for i := range workers {
		workers[i] = &openLoopWorker{
			queue: make(chan openLoopOp, perWorkerBacklog),
			hist:  stats.NewHistogram(),
		}
	}

	var (
		submitWG sync.WaitGroup // worker loops
		opWG     sync.WaitGroup // in-flight completion waits
		seq      int64          // written-value sequence, pacer-owned
	)
	for i := range workers {
		w := workers[i]
		submitWG.Add(1)
		go func() {
			defer submitWG.Done()
			for op := range w.queue {
				opCtx, cancel := context.WithDeadline(ctx, op.intended.Add(cfg.OpTimeout))
				var (
					wait func(context.Context) error
					err  error
				)
				if op.read {
					wait, err = client.SubmitRead(opCtx, op.key)
				} else {
					wait, err = client.SubmitWrite(opCtx, op.key, op.seq)
				}
				if err != nil {
					w.account(err, opCtx, 0)
					cancel()
					continue
				}
				op := op
				opWG.Add(1)
				go func() {
					defer opWG.Done()
					defer cancel()
					err := wait(opCtx)
					w.account(err, opCtx, time.Since(op.intended))
				}()
			}
		}()
	}

	rng := NewRand(cfg.Seed)
	arrivals := NewArrivals(NewRand(cfg.Seed+1), cfg.Rate, cfg.Poisson)
	zipf := NewZipf(NewRand(cfg.Seed+2), cfg.Keys, cfg.ZipfS)

	var offered, overrun int64
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	next := start
pace:
	for {
		next = next.Add(arrivals.Next())
		if next.After(deadline) {
			break
		}
		// Sleep only when ahead of schedule; when behind, arrivals fire
		// back-to-back with past intended timestamps — that burst IS the
		// offered load the schedule demands, not an error.
		if gap := time.Until(next); gap > 0 {
			select {
			case <-time.After(gap):
			case <-ctx.Done():
				break pace
			}
		} else if ctx.Err() != nil {
			break
		}
		seq++
		op := openLoopOp{
			key:      zipf.Next(),
			read:     rng.Float64() < cfg.ReadFraction,
			seq:      seq,
			intended: next,
		}
		offered++
		w := workers[op.key%cfg.Workers]
		select {
		case w.queue <- op:
		default:
			// The worker is wedged and its backlog is full. Dropping here
			// (counted) keeps the generator itself from becoming an
			// unbounded queue; the drop is still an offered arrival.
			overrun++
		}
	}
	for _, w := range workers {
		close(w.queue)
	}
	submitWG.Wait()
	opWG.Wait()

	res := OpenLoopResult{
		Offered: offered,
		Overrun: overrun,
		Elapsed: cfg.Duration,
		Hist:    stats.NewHistogram(),
	}
	for _, w := range workers {
		res.Completed += w.completed
		res.Overloaded += w.overloaded
		res.Timeouts += w.timeouts
		res.Failed += w.failed
		res.Hist.Merge(w.hist)
	}
	return res, nil
}
