package workload

import (
	"math"
	"testing"
	"time"
)

// TestSplitmix64Golden pins the PRNG output for a fixed seed. If this test
// ever fails, recorded sweeps are no longer reproducible from their seeds —
// do not "fix" the expectations without bumping the seed scheme everywhere.
func TestSplitmix64Golden(t *testing.T) {
	want := []uint64{
		0x22118258a9d111a0, 0x346edce5f713f8ed, 0x1e9a57bc80e6721d, 0x2d160e7e5c3f42ca,
		0x81c2e6dc980d78eb, 0x5647e55ad933f62e, 0x1f6622b40cb38e42, 0x6e7411b06820371c,
	}
	r := NewRand(12345)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("draw %d: got %#016x, want %#016x", i, got, w)
		}
	}
}

func TestRandDeterministicAcrossInstances(t *testing.T) {
	a, b := NewRand(777), NewRand(777)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Fatal("different seeds produced identical first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

// TestZipfChiSquare checks the empirical key frequencies against the exact
// zipfian PMF with a chi-square statistic. With 15 degrees of freedom the
// 99.999th percentile of chi-square is ~44.3; a correct sampler at a fixed
// seed sits far below that, a broken CDF or search blows far past it.
func TestZipfChiSquare(t *testing.T) {
	const (
		n     = 16
		s     = 1.0
		draws = 200000
	)
	r := NewRand(2024)
	z := NewZipf(r, n, s)
	obs := make([]int, n)
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k < 0 || k >= n {
			t.Fatalf("Zipf drew out-of-range key %d", k)
		}
		obs[k]++
	}
	norm := 0.0
	for i := 1; i <= n; i++ {
		norm += 1 / math.Pow(float64(i), s)
	}
	chi2 := 0.0
	for i := 0; i < n; i++ {
		exp := float64(draws) / math.Pow(float64(i+1), s) / norm
		d := float64(obs[i]) - exp
		chi2 += d * d / exp
	}
	if chi2 > 44.3 {
		t.Fatalf("chi-square %.1f exceeds 44.3 (df=15): distribution is off (obs=%v)", chi2, obs)
	}
	// Popularity must actually be skewed: rank 0 ~9.5x rank 15 at s=1.
	if obs[0] < 5*obs[n-1] {
		t.Fatalf("zipf skew missing: rank0=%d rank15=%d", obs[0], obs[n-1])
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	const n = 8
	r := NewRand(5)
	z := NewZipf(r, n, 0)
	obs := make([]int, n)
	for i := 0; i < 80000; i++ {
		obs[z.Next()]++
	}
	for k, c := range obs {
		if c < 9000 || c > 11000 {
			t.Fatalf("s=0 should be uniform: key %d got %d of 80000", k, c)
		}
	}
}

// TestPoissonArrivals checks the exponential gap stream at a fixed seed:
// mean within 2% of 1/rate and squared coefficient of variation within 10%
// of 1 (the exponential's signature; a fixed-rate stream would give 0).
func TestPoissonArrivals(t *testing.T) {
	const (
		rate  = 1e6 // 1 op/µs
		draws = 200000
	)
	a := NewArrivals(NewRand(31337), rate, true)
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		g := float64(a.Next())
		if g < 0 {
			t.Fatalf("negative gap %g", g)
		}
		sum += g
		sumSq += g * g
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	wantMean := 1e9 / rate
	if math.Abs(mean-wantMean) > 0.02*wantMean {
		t.Fatalf("mean gap %.1fns, want %.1fns ±2%%", mean, wantMean)
	}
	cv2 := variance / (mean * mean)
	if math.Abs(cv2-1) > 0.1 {
		t.Fatalf("CV² = %.3f, want ~1 for exponential gaps", cv2)
	}
}

func TestFixedArrivals(t *testing.T) {
	a := NewArrivals(NewRand(1), 1000, false) // 1k ops/sec -> 1ms gaps
	for i := 0; i < 100; i++ {
		if g := a.Next(); g != time.Millisecond {
			t.Fatalf("fixed gap %v, want 1ms", g)
		}
	}
}

func TestArrivalStreamsReproducible(t *testing.T) {
	mk := func() []time.Duration {
		a := NewArrivals(NewRand(55), 50000, true)
		out := make([]time.Duration, 64)
		for i := range out {
			out[i] = a.Next()
		}
		return out
	}
	x, y := mk(), mk()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("same-seed arrival streams diverged at %d: %v vs %v", i, x[i], y[i])
		}
	}
}
