package workload

import (
	"math"
	"sort"
	"time"
)

// Rand is a self-contained splitmix64 PRNG. The open-loop generator pins its
// arrival times and key choices to this instead of math/rand so that a sweep
// is reproducible byte-for-byte from its seed across Go releases — math/rand's
// stream is only stable per release, and rand.NewZipf's rejection sampling
// consumes a data-dependent number of variates. splitmix64 is two multiplies
// and three xor-shifts per draw, passes BigCrush, and its output sequence is
// fixed by the algorithm, which lets the tests pin a golden sequence.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{state: uint64(seed)}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Zipf draws keys in [0, n) with popularity weight 1/(rank+1)^s. It inverts
// a precomputed CDF with a binary search — O(log n) per draw with no
// rejection, so the number of PRNG variates consumed per draw is fixed (one),
// keeping the arrival stream and the key stream independently reproducible.
// s = 0 degenerates to uniform.
type Zipf struct {
	r   *Rand
	cdf []float64
}

// NewZipf builds a zipfian sampler over n keys with exponent s >= 0.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("workload: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // defend against rounding leaving the last bucket short
	return &Zipf{r: r, cdf: cdf}
}

// Next returns the next key index in [0, n).
func (z *Zipf) Next() int {
	u := z.r.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Arrivals generates the inter-arrival gaps of an open-loop schedule at a
// target offered rate. Poisson mode draws exponential gaps (what a large
// population of independent clients produces); fixed mode emits a perfectly
// paced constant gap (useful for pinning CI scenarios where the offered
// count must be exact).
type Arrivals struct {
	r        *Rand
	interval float64 // mean gap in nanoseconds
	poisson  bool
}

// NewArrivals returns an arrival source at rate ops/sec. rate must be
// positive.
func NewArrivals(r *Rand, rate float64, poisson bool) *Arrivals {
	if rate <= 0 {
		panic("workload: NewArrivals with non-positive rate")
	}
	return &Arrivals{r: r, interval: 1e9 / rate, poisson: poisson}
}

// Next returns the gap to the next intended arrival.
func (a *Arrivals) Next() time.Duration {
	if !a.poisson {
		return time.Duration(a.interval)
	}
	// -ln(1-U) with U in [0,1) keeps the argument in (0,1], avoiding ln(0).
	return time.Duration(-math.Log(1-a.r.Float64()) * a.interval)
}
