// Package workload drives register deployments with concurrent readers and a
// writer, records every operation into a history, injects crashes according
// to a schedule, and measures latency and round-trip counts. It is the
// engine behind experiments E1, E3 and E7.
package workload

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fastread/internal/fault"
	"fastread/internal/history"
	"fastread/internal/stats"
	"fastread/internal/types"
)

// Writer is the minimal write interface a protocol must expose to be driven
// by a workload.
type Writer interface {
	Write(ctx context.Context, value types.Value) error
}

// Reader is the minimal read interface a protocol must expose to be driven
// by a workload. It returns the value, its logical timestamp and the number
// of round-trips the read used.
type Reader interface {
	Read(ctx context.Context) (types.Value, types.Timestamp, int, error)
}

// WriterFunc adapts a function to the Writer interface.
type WriterFunc func(ctx context.Context, value types.Value) error

// Write implements Writer.
func (f WriterFunc) Write(ctx context.Context, value types.Value) error { return f(ctx, value) }

// ReaderFunc adapts a function to the Reader interface.
type ReaderFunc func(ctx context.Context) (types.Value, types.Timestamp, int, error)

// Read implements Reader.
func (f ReaderFunc) Read(ctx context.Context) (types.Value, types.Timestamp, int, error) {
	return f(ctx)
}

// Config parameterises a workload run.
type Config struct {
	// Writes is the number of write operations the writer performs; values
	// are unique ("<prefix>1", "<prefix>2", ...).
	Writes int
	// ReadsPerReader is the number of reads each reader performs.
	ReadsPerReader int
	// ValuePrefix prefixes every written value; defaults to "v".
	ValuePrefix string
	// ValuePadding pads written values to this many bytes (0 = no padding),
	// so experiments can control payload size.
	ValuePadding int
	// WriterThinkTime is the pause between consecutive writes.
	WriterThinkTime time.Duration
	// ReaderThinkTime is the pause between consecutive reads of one reader.
	ReaderThinkTime time.Duration
	// Crashes, if non-nil, is consulted after every completed operation; due
	// crash events are applied through CrashFn.
	Crashes *fault.CrashSchedule
	// CrashFn applies a crash to the deployment (typically
	// (*transport.InMemNetwork).Crash).
	CrashFn func(types.ProcessID)
	// OpTimeout bounds each individual operation; 0 means 10 seconds.
	OpTimeout time.Duration
}

// Clients bundles the register handles the workload drives.
type Clients struct {
	Writer  Writer
	Readers []Reader
}

// Result is everything a workload run measured.
type Result struct {
	// History contains every operation with its real-time bounds.
	History history.History
	// WriteLatency and ReadLatency summarise per-operation latency.
	WriteLatency stats.LatencySummary
	ReadLatency  stats.LatencySummary
	// ReadRounds is the average number of round-trips per read as reported
	// by the protocol.
	ReadRounds float64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// CompletedWrites and CompletedReads count successful operations.
	CompletedWrites int
	CompletedReads  int
	// FailedOps counts operations that returned an error (e.g. because the
	// run crashed more servers than the protocol tolerates).
	FailedOps int
	// Throughput is completed operations per second.
	Throughput float64
}

// ErrNoClients indicates a workload with neither writer nor readers.
var ErrNoClients = errors.New("workload: no clients to drive")

// Run executes the workload and returns its measurements. The writer and all
// readers run concurrently; the run ends when every client has finished its
// quota.
func Run(ctx context.Context, cfg Config, clients Clients) (Result, error) {
	if clients.Writer == nil && len(clients.Readers) == 0 {
		return Result{}, ErrNoClients
	}
	if cfg.ValuePrefix == "" {
		cfg.ValuePrefix = "v"
	}
	if cfg.OpTimeout == 0 {
		cfg.OpTimeout = 10 * time.Second
	}

	recorder := history.NewRecorder()
	writeLat := stats.NewLatencyRecorder(cfg.Writes)
	readLats := make([]*stats.LatencyRecorder, len(clients.Readers))
	for i := range readLats {
		readLats[i] = stats.NewLatencyRecorder(cfg.ReadsPerReader)
	}

	var (
		completedOps int64
		failedOps    int64
		roundTotal   int64
		roundReads   int64
		crashMu      sync.Mutex
	)
	applyCrashes := func() {
		if cfg.Crashes == nil || cfg.CrashFn == nil {
			return
		}
		crashMu.Lock()
		defer crashMu.Unlock()
		for _, victim := range cfg.Crashes.Fire(int(atomic.LoadInt64(&completedOps))) {
			cfg.CrashFn(victim)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup

	if clients.Writer != nil && cfg.Writes > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= cfg.Writes; i++ {
				value := makeValue(cfg.ValuePrefix, i, cfg.ValuePadding)
				opID := recorder.Invoke(types.Writer(), history.OpWrite, value)
				opCtx, cancel := context.WithTimeout(ctx, cfg.OpTimeout)
				opStart := time.Now()
				err := clients.Writer.Write(opCtx, value)
				cancel()
				if err != nil {
					recorder.Fail(opID)
					atomic.AddInt64(&failedOps, 1)
					if ctx.Err() != nil {
						return
					}
					continue
				}
				writeLat.Record(time.Since(opStart))
				recorder.Return(opID, nil, types.Timestamp(i))
				atomic.AddInt64(&completedOps, 1)
				applyCrashes()
				if cfg.WriterThinkTime > 0 {
					time.Sleep(cfg.WriterThinkTime)
				}
			}
		}()
	}

	for idx, reader := range clients.Readers {
		wg.Add(1)
		go func(idx int, reader Reader) {
			defer wg.Done()
			proc := types.Reader(idx + 1)
			for i := 0; i < cfg.ReadsPerReader; i++ {
				opID := recorder.Invoke(proc, history.OpRead, nil)
				opCtx, cancel := context.WithTimeout(ctx, cfg.OpTimeout)
				opStart := time.Now()
				value, ts, rounds, err := reader.Read(opCtx)
				cancel()
				if err != nil {
					recorder.Fail(opID)
					atomic.AddInt64(&failedOps, 1)
					if ctx.Err() != nil {
						return
					}
					continue
				}
				readLats[idx].Record(time.Since(opStart))
				atomic.AddInt64(&roundTotal, int64(rounds))
				atomic.AddInt64(&roundReads, 1)
				recorder.Return(opID, value, ts)
				atomic.AddInt64(&completedOps, 1)
				applyCrashes()
				if cfg.ReaderThinkTime > 0 {
					time.Sleep(cfg.ReaderThinkTime)
				}
			}
		}(idx, reader)
	}

	wg.Wait()
	elapsed := time.Since(start)

	merged := stats.NewLatencyRecorder(0)
	for _, r := range readLats {
		merged.Merge(r)
	}

	result := Result{
		History:         recorder.History(),
		WriteLatency:    writeLat.Summary(),
		ReadLatency:     merged.Summary(),
		Elapsed:         elapsed,
		CompletedWrites: countCompleted(recorder.History(), history.OpWrite),
		CompletedReads:  countCompleted(recorder.History(), history.OpRead),
		FailedOps:       int(atomic.LoadInt64(&failedOps)),
	}
	if roundReads > 0 {
		result.ReadRounds = float64(roundTotal) / float64(roundReads)
	}
	result.Throughput = stats.Throughput(result.CompletedWrites+result.CompletedReads, elapsed)
	return result, nil
}

// makeValue builds the i-th written value, optionally padded to a fixed
// size.
func makeValue(prefix string, i, padding int) types.Value {
	v := fmt.Sprintf("%s%d", prefix, i)
	if padding > len(v) {
		buf := make([]byte, padding)
		copy(buf, v)
		for j := len(v); j < padding; j++ {
			buf[j] = '.'
		}
		return buf
	}
	return types.Value(v)
}

// countCompleted counts completed, non-failed operations of the given kind.
func countCompleted(h history.History, kind history.OpKind) int {
	n := 0
	for _, op := range h {
		if op.Kind == kind && op.Completed && !op.Failed {
			n++
		}
	}
	return n
}
