package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// bruteQuantile is the reference: nearest-rank on a fully sorted sample set.
func bruteQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// checkQuantiles asserts the histogram's quantiles against a brute-force
// sort of the same samples: never under-reported, and over-reported by at
// most the bucket width (1/32 relative) plus 1ns.
func checkQuantiles(t *testing.T, h *Histogram, samples []int64) {
	t.Helper()
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		exact := bruteQuantile(sorted, q)
		got := int64(h.Quantile(q))
		if got < exact {
			t.Errorf("q=%g: histogram %d under-reports exact %d", q, got, exact)
		}
		slack := exact/32 + 1
		if got > exact+slack {
			t.Errorf("q=%g: histogram %d exceeds exact %d by more than bucket width (slack %d)", q, got, exact, slack)
		}
	}
}

func TestHistogramQuantilesVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Log-uniform samples spanning 1ns..10s — exercises many octaves,
	// including the exact small-value buckets.
	const n = 20000
	samples := make([]int64, 0, n)
	h := NewHistogram()
	for i := 0; i < n; i++ {
		v := int64(math.Exp(rng.Float64() * math.Log(1e10)))
		samples = append(samples, v)
		h.Record(time.Duration(v))
	}
	if h.Count() != n {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	checkQuantiles(t, h, samples)
}

func TestHistogramHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// A latency-shaped distribution: tight body around 100µs with a 1%
	// tail two orders of magnitude slower. p999 must track the tail.
	const n = 50000
	samples := make([]int64, 0, n)
	h := NewHistogram()
	for i := 0; i < n; i++ {
		var v int64
		if rng.Float64() < 0.01 {
			v = int64(5e6 + rng.Float64()*2e7)
		} else {
			v = int64(8e4 + rng.Float64()*4e4)
		}
		samples = append(samples, v)
		h.Record(time.Duration(v))
	}
	checkQuantiles(t, h, samples)
	if p999 := h.Quantile(0.999); p999 < 5*time.Millisecond {
		t.Fatalf("p999 = %v lost the tail (want >= 5ms)", p999)
	}
}

func TestHistogramMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 16384
	single := NewHistogram()
	parts := []*Histogram{NewHistogram(), NewHistogram(), NewHistogram(), NewHistogram()}
	for i := 0; i < n; i++ {
		v := time.Duration(rng.Int63n(int64(time.Second)))
		single.Record(v)
		parts[i%len(parts)].Record(v)
	}
	merged := NewHistogram()
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != single.Count() {
		t.Fatalf("merged count %d != single count %d", merged.Count(), single.Count())
	}
	if merged.Min() != single.Min() || merged.Max() != single.Max() {
		t.Fatalf("merged min/max %v/%v != single %v/%v", merged.Min(), merged.Max(), single.Min(), single.Max())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		if merged.Quantile(q) != single.Quantile(q) {
			t.Errorf("q=%g: merged %v != single %v", q, merged.Quantile(q), single.Quantile(q))
		}
	}
	// Merging an empty or nil histogram is a no-op.
	before := merged.Quantile(0.99)
	merged.Merge(nil)
	merged.Merge(NewHistogram())
	if merged.Quantile(0.99) != before {
		t.Fatal("merging empty histograms changed quantiles")
	}
}

func TestHistogramAtRank(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 10; i++ {
		h.Record(time.Duration(i)) // 1..10ns land in exact buckets
	}
	for r := uint64(1); r <= 10; r++ {
		if got := h.AtRank(r); got != time.Duration(r) {
			t.Errorf("AtRank(%d) = %v, want %dns", r, got, r)
		}
	}
	if got := h.AtRank(0); got != 1 {
		t.Errorf("AtRank(0) should clamp to rank 1, got %v", got)
	}
	if got := h.AtRank(100); got != 10 {
		t.Errorf("AtRank(100) should clamp to rank Count, got %v", got)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.99) != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-time.Second) // clamps to zero
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative sample should clamp to 0: min=%v max=%v n=%d", h.Min(), h.Max(), h.Count())
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every probe value must land in a bucket whose upper bound is >= the
	// value and within 1/32 relative width of it.
	probes := []int64{0, 1, 31, 32, 33, 63, 64, 1000, 1 << 20, (1 << 40) - 1, 1 << 40, math.MaxInt64}
	for _, v := range probes {
		b := bucketOf(v)
		up := bucketUpper(b)
		if up < v {
			t.Errorf("value %d: bucket upper %d below value", v, up)
		}
		if up-v > v/32+1 {
			t.Errorf("value %d: bucket upper %d too wide", v, up)
		}
	}
}
