package stats

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestLatencyRecorderSummary(t *testing.T) {
	r := NewLatencyRecorder(10)
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	if r.Count() != 100 {
		t.Fatalf("Count = %d", r.Count())
	}
	s := r.Summary()
	if s.Count != 100 {
		t.Errorf("Summary.Count = %d", s.Count)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.Mean < 50*time.Millisecond || s.Mean > 51*time.Millisecond {
		t.Errorf("Mean = %v, want ~50.5ms", s.Mean)
	}
	if s.Median < 50*time.Millisecond || s.Median > 51*time.Millisecond {
		t.Errorf("Median = %v", s.Median)
	}
	if s.P95 < 94*time.Millisecond || s.P95 > 96*time.Millisecond {
		t.Errorf("P95 = %v", s.P95)
	}
	if s.Stddev == 0 {
		t.Error("Stddev should be non-zero")
	}
	if !strings.Contains(s.String(), "n=100") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestEmptySummary(t *testing.T) {
	var r LatencyRecorder
	s := r.Summary()
	if s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if s.String() != "no samples" {
		t.Errorf("String() = %q", s.String())
	}
}

func TestMerge(t *testing.T) {
	a := NewLatencyRecorder(0)
	b := NewLatencyRecorder(0)
	a.Record(time.Millisecond)
	b.Record(3 * time.Millisecond)
	a.Merge(b)
	a.Merge(nil)
	if a.Count() != 2 {
		t.Errorf("Count after merge = %d", a.Count())
	}
}

func TestPercentileEdges(t *testing.T) {
	if Percentile(nil, 50) != 0 {
		t.Error("percentile of empty should be 0")
	}
	s := []time.Duration{10, 20, 30, 40}
	if Percentile(s, 0) != 10 || Percentile(s, 100) != 40 {
		t.Error("0th/100th percentile wrong")
	}
	if Percentile(s, -5) != 10 || Percentile(s, 120) != 40 {
		t.Error("out-of-range percentiles should clamp")
	}
	mid := Percentile(s, 50)
	if mid < 20 || mid > 30 {
		t.Errorf("50th percentile = %v", mid)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		lo := float64(p1 % 101)
		hi := float64(p2 % 101)
		if lo > hi {
			lo, hi = hi, lo
		}
		return Percentile(samples, lo) <= Percentile(samples, hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Mean() != 0 {
		t.Error("empty counter mean should be 0")
	}
	c.Add(1)
	c.Add(2)
	c.Add(3)
	if c.Total() != 6 || c.N() != 3 {
		t.Errorf("Total/N = %d/%d", c.Total(), c.N())
	}
	if c.Mean() != 2 {
		t.Errorf("Mean = %f", c.Mean())
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Read latency", "protocol", "S", "mean", "p99")
	tbl.AddRow("fast", 4, 1.5, 200*time.Microsecond)
	tbl.AddRow("abd", 4, 3.0, 410*time.Microsecond)
	tbl.AddNote("delay=%v per message", time.Millisecond)

	text := tbl.String()
	if !strings.Contains(text, "Read latency") || !strings.Contains(text, "fast") ||
		!strings.Contains(text, "abd") || !strings.Contains(text, "note:") {
		t.Errorf("text rendering missing content:\n%s", text)
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) < 6 {
		t.Errorf("expected at least 6 lines, got %d:\n%s", len(lines), text)
	}

	md := tbl.Markdown()
	if !strings.Contains(md, "| protocol | S | mean | p99 |") {
		t.Errorf("markdown header missing:\n%s", md)
	}
	if !strings.Contains(md, "| --- |") {
		t.Errorf("markdown separator missing:\n%s", md)
	}
	if !strings.Contains(md, "### Read latency") {
		t.Errorf("markdown title missing:\n%s", md)
	}
	if !strings.Contains(md, "*delay=1ms per message*") {
		t.Errorf("markdown note missing:\n%s", md)
	}
}

func TestTableShortRowsRenderSafely(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddRow("only-one")
	text := tbl.String()
	if !strings.Contains(text, "only-one") {
		t.Errorf("short row dropped:\n%s", text)
	}
	md := tbl.Markdown()
	if !strings.Contains(md, "only-one") {
		t.Errorf("short row dropped in markdown:\n%s", md)
	}
}

func TestFloatFormatting(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.AddRow(2.0)
	tbl.AddRow(2.345)
	text := tbl.String()
	if !strings.Contains(text, "2\n") && !strings.Contains(text, "2 ") {
		t.Errorf("integral float not rendered as integer:\n%s", text)
	}
	if !strings.Contains(text, "2.35") {
		t.Errorf("fractional float not rounded to 2 places:\n%s", text)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(100, time.Second); got != 100 {
		t.Errorf("Throughput = %f", got)
	}
	if got := Throughput(100, 0); got != 0 {
		t.Errorf("Throughput with zero elapsed = %f", got)
	}
	if got := Throughput(50, 500*time.Millisecond); got != 100 {
		t.Errorf("Throughput = %f, want 100", got)
	}
}

func TestIntHistogram(t *testing.T) {
	var h IntHistogram
	if h.String() != "empty" || h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatalf("zero histogram misbehaves: %q count=%d", h.String(), h.Count())
	}
	for _, v := range []int{0, 1, 1, 3, -2} { // -2 clamps to 0
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.Max() != 3 {
		t.Errorf("Max = %d, want 3", h.Max())
	}
	if got, want := h.Mean(), 1.0; got != want { // (0+1+1+3+0)/5
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got := h.String(); got != "0:2 1:2 3:1" {
		t.Errorf("String = %q", got)
	}

	var other IntHistogram
	other.Observe(5)
	h.Merge(&other)
	h.Merge(nil)
	if h.Count() != 6 || h.Max() != 5 {
		t.Errorf("after merge: count=%d max=%d", h.Count(), h.Max())
	}
}
