package stats

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"time"
)

// Histogram bucket geometry: values below 2^subBits nanoseconds get one
// bucket each (exact); above that, every power-of-two octave is split into
// 2^subBits log-linear sub-buckets, so the relative quantisation error is
// bounded by 1/2^subBits ≈ 3.1% at any magnitude. That keeps p999 of a
// microsecond-scale distribution as faithful as p50 of a millisecond-scale
// one, which a fixed linear bucketing cannot do.
const (
	histSubBits = 5
	histSub     = 1 << histSubBits // sub-buckets per octave
	// histBuckets covers every non-negative int64 nanosecond value: the
	// first histSub exact buckets plus (63-histSubBits) octaves of histSub
	// sub-buckets each.
	histBuckets = histSub + (63-histSubBits)*histSub
)

// Histogram is a log-bucketed latency histogram: constant-time Record, ~3%
// worst-case quantisation error at every magnitude, and lossless Merge. It is
// the recorder the open-loop load harness uses — an open-loop run completes
// millions of operations across many workers, so keeping raw samples (as
// LatencyRecorder does) would cost memory proportional to the run length,
// while a Histogram is a fixed ~15KB regardless of duration.
//
// Like LatencyRecorder, a Histogram is NOT safe for concurrent use: each
// worker records into its own and the results are merged.
type Histogram struct {
	counts [histBuckets]uint64
	total  uint64
	sum    float64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

// bucketOf maps a non-negative nanosecond value to its bucket index.
func bucketOf(v int64) int {
	if v < histSub {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // 2^e <= v < 2^(e+1), e >= histSubBits
	m := int(v>>(uint(e)-histSubBits)) & (histSub - 1)
	return histSub + (e-histSubBits)*histSub + m
}

// bucketUpper returns the largest value mapping to bucket b — the
// conservative (never-understating) representative a latency quantile wants.
func bucketUpper(b int) int64 {
	if b < histSub {
		return int64(b)
	}
	i := b - histSub
	e := histSubBits + i/histSub
	m := int64(i % histSub)
	lower := (int64(histSub) + m) << (uint(e) - histSubBits)
	return lower + (int64(1) << (uint(e) - histSubBits)) - 1
}

// Record adds one sample. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.total++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge adds all of other's samples. Merging histograms is lossless (bucket
// counts add), which is what lets per-worker recorders combine without
// degrading tail fidelity.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	for b, c := range other.counts {
		h.counts[b] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Mean returns the arithmetic mean of the recorded samples (exact — the sum
// is kept outside the buckets).
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.total))
}

// AtRank returns the value of the rank-th smallest sample (1-based; rank is
// clamped into [1, Count]). The result is the containing bucket's upper
// bound, clamped to the exact observed maximum, so a quantile is never
// under-reported and over-reporting is bounded by the bucket width (~3.1%).
func (h *Histogram) AtRank(rank uint64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var seen uint64
	for b, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketUpper(b)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Quantile returns the q-quantile (q in [0,1]) by nearest rank: Quantile(0.99)
// is the smallest recorded value v such that at least 99% of samples are
// ≤ v, up to bucket quantisation. Quantile(0) is the minimum, Quantile(1)
// the maximum.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(h.min)
	}
	if q >= 1 {
		return time.Duration(h.max)
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	return h.AtRank(rank)
}

// String renders the headline quantiles compactly.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "no samples"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%v p50=%v p99=%v p999=%v max=%v",
		h.total, h.Mean().Round(time.Microsecond),
		h.Quantile(0.50).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.Quantile(0.999).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
	return b.String()
}
