// Package stats aggregates the measurements produced by workloads and
// experiments: operation latencies, round-trip counts and throughput, plus a
// small text-table renderer so that cmd/fastbench and EXPERIMENTS.md show the
// same rows.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// LatencyRecorder accumulates individual operation latencies. It is not safe
// for concurrent use; each worker records into its own recorder and the
// results are merged.
type LatencyRecorder struct {
	samples []time.Duration
}

// NewLatencyRecorder returns an empty recorder with the given capacity hint.
func NewLatencyRecorder(capacityHint int) *LatencyRecorder {
	return &LatencyRecorder{samples: make([]time.Duration, 0, capacityHint)}
}

// Record adds one sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.samples = append(r.samples, d)
}

// Merge appends all samples from other.
func (r *LatencyRecorder) Merge(other *LatencyRecorder) {
	if other == nil {
		return
	}
	r.samples = append(r.samples, other.samples...)
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int { return len(r.samples) }

// Summary computes the distribution summary of the recorded samples.
func (r *LatencyRecorder) Summary() LatencySummary {
	return SummarizeDurations(r.samples)
}

// LatencySummary is a distribution summary of operation latencies.
type LatencySummary struct {
	Count  int
	Min    time.Duration
	Max    time.Duration
	Mean   time.Duration
	Median time.Duration
	P95    time.Duration
	P99    time.Duration
	Stddev time.Duration
}

// SummarizeDurations computes a LatencySummary from raw samples.
func SummarizeDurations(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var sum float64
	for _, s := range sorted {
		sum += float64(s)
	}
	mean := sum / float64(len(sorted))
	var sq float64
	for _, s := range sorted {
		d := float64(s) - mean
		sq += d * d
	}
	std := math.Sqrt(sq / float64(len(sorted)))

	return LatencySummary{
		Count:  len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   time.Duration(mean),
		Median: Percentile(sorted, 50),
		P95:    Percentile(sorted, 95),
		P99:    Percentile(sorted, 99),
		Stddev: time.Duration(std),
	}
}

// Percentile returns the p-th percentile (0..100) of an ascending-sorted
// sample slice using nearest-rank interpolation.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}

// String renders the summary compactly.
func (s LatencySummary) String() string {
	if s.Count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.Median.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// Counter is a simple named tally used for round-trip and message counts.
type Counter struct {
	total int64
	n     int64
}

// Add accumulates one observation.
func (c *Counter) Add(v int64) {
	c.total += v
	c.n++
}

// Total returns the sum of all observations.
func (c *Counter) Total() int64 { return c.total }

// Mean returns the average observation, or 0 with no observations.
func (c *Counter) Mean() float64 {
	if c.n == 0 {
		return 0
	}
	return float64(c.total) / float64(c.n)
}

// N returns the number of observations.
func (c *Counter) N() int64 { return c.n }

// Table is a simple column-aligned text table used to report experiment
// results. It renders both as aligned plain text and as GitHub Markdown.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with fmt.Sprint.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-form footnote shown under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// widths computes the rendered width of each column.
func (t *Table) widths() []int {
	w := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		w[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(w) && len(cell) > w[i] {
				w[i] = len(cell)
			}
		}
	}
	return w
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	w := t.widths()
	writeRow := func(cells []string) {
		for i, width := range w {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", width-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured Markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		cells := make([]string, len(t.Columns))
		copy(cells, row)
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "*%s*\n", n)
		}
	}
	return b.String()
}

// IntHistogram tallies small non-negative integer observations — in-flight
// operation counts, batch sizes — exactly, one bucket per value. It is not
// safe for concurrent use; like LatencyRecorder, each worker records into
// its own histogram and the results are merged.
type IntHistogram struct {
	counts []int64
	total  int64
}

// Observe tallies one observation (negative values are clamped to 0).
func (h *IntHistogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	for len(h.counts) <= v {
		h.counts = append(h.counts, 0)
	}
	h.counts[v]++
	h.total++
}

// Merge adds all of other's tallies.
func (h *IntHistogram) Merge(other *IntHistogram) {
	if other == nil {
		return
	}
	for v, c := range other.counts {
		if c == 0 {
			continue
		}
		for len(h.counts) <= v {
			h.counts = append(h.counts, 0)
		}
		h.counts[v] += c
		h.total += c
	}
}

// Count returns the number of observations.
func (h *IntHistogram) Count() int64 { return h.total }

// Mean returns the average observed value, or 0 with no observations.
func (h *IntHistogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum int64
	for v, c := range h.counts {
		sum += int64(v) * c
	}
	return float64(sum) / float64(h.total)
}

// Max returns the largest observed value.
func (h *IntHistogram) Max() int {
	for v := len(h.counts) - 1; v >= 0; v-- {
		if h.counts[v] > 0 {
			return v
		}
	}
	return 0
}

// String renders the non-empty buckets compactly: "0:3 1:12 2:40 ...".
func (h *IntHistogram) String() string {
	if h.total == 0 {
		return "empty"
	}
	var b strings.Builder
	first := true
	for v, c := range h.counts {
		if c == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d:%d", v, c)
	}
	return b.String()
}

// Throughput converts an operation count and elapsed duration to ops/sec.
func Throughput(ops int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}
