package sig

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"fastread/internal/types"
	"fastread/internal/wire"
)

// DefaultCacheCapacity is the per-generation entry bound used when NewCache
// is given a non-positive capacity. Steady-state traffic re-verifies a
// handful of live (key, ts) pairs per register; 4096 distinct signatures per
// generation covers thousands of concurrently hot registers while bounding
// the cache to a few hundred KiB.
const DefaultCacheCapacity = 4096

// Cache memoises successful signature verifications. The arbitrary-failure
// protocol (Figure 5) makes every server re-verify the SAME writer signature
// on every read round-trip — the read request writes back the reader's
// last-observed (ts, cur, prev, sig), and the server's reply carries the
// stored signature, both of which change only when the writer writes. A
// bounded memo of already-verified signatures turns that steady-state
// asymmetric-crypto cost (tens of microseconds per Ed25519 verification)
// into one short hash per message.
//
// Entries are keyed by SHA-256 over the canonical signed bytes (which
// domain-separate the register key) concatenated with the signature, so a
// cache hit proves the exact (key, ts, cur, prev, sig) tuple verified before;
// a malicious server cannot construct a colliding tuple without breaking the
// hash. Only SUCCESSFUL verifications are cached — failures stay expensive,
// which is fine because honest traffic never produces them.
//
// Eviction is two-generation (the classic "flip" scheme): inserts go to the
// current generation; when it fills, the previous generation is dropped and
// the current one takes its place. Memory is bounded by 2×capacity digests
// with O(1) amortised cost and no per-entry bookkeeping.
type Cache struct {
	v        Verifier
	capacity int

	mu   sync.RWMutex
	cur  map[[sha256.Size]byte]struct{}
	prev map[[sha256.Size]byte]struct{}

	hits, misses atomic.Int64
}

// NewCache wraps the verifier in a verified-signature cache bounding each of
// its two generations to capacity entries (DefaultCacheCapacity if <= 0).
func NewCache(v Verifier, capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		v:        v,
		capacity: capacity,
		cur:      make(map[[sha256.Size]byte]struct{}),
	}
}

// Verifier returns the underlying (uncached) verifier.
func (c *Cache) Verifier() Verifier { return c.v }

// VerifyKeyed checks the writer's signature over the (key, ts, cur, prev)
// tuple, consulting the cache first. Timestamp 0 bypasses the cache entirely:
// its acceptance rule is a cheap structural check, not asymmetric crypto.
func (c *Cache) VerifyKeyed(key string, ts types.Timestamp, cur, prev types.Value, signature []byte) error {
	if ts == types.InitialTimestamp {
		return c.v.VerifyKeyed(key, ts, cur, prev, signature)
	}

	bp := wire.GetBuffer()
	buf := wire.AppendSignedBytes(*bp, key, ts, cur, prev)
	buf = append(buf, signature...)
	digest := sha256.Sum256(buf)
	*bp = buf
	wire.PutBuffer(bp)

	c.mu.RLock()
	_, hit := c.cur[digest]
	inPrev := false
	if !hit {
		_, inPrev = c.prev[digest]
	}
	c.mu.RUnlock()
	if hit || inPrev {
		if inPrev {
			// Promote actively-hit entries into the current generation so a
			// continuously hot signature survives the next flip instead of
			// being re-verified once per flip cycle.
			c.insert(digest)
		}
		c.hits.Add(1)
		return nil
	}

	if err := c.v.VerifyKeyed(key, ts, cur, prev, signature); err != nil {
		return err
	}
	c.misses.Add(1)
	c.insert(digest)
	return nil
}

// insert records a verified digest in the current generation, flipping
// generations when it is full.
func (c *Cache) insert(digest [sha256.Size]byte) {
	c.mu.Lock()
	if _, dup := c.cur[digest]; !dup {
		if len(c.cur) >= c.capacity {
			c.prev = c.cur
			c.cur = make(map[[sha256.Size]byte]struct{}, c.capacity)
		}
		c.cur[digest] = struct{}{}
	}
	c.mu.Unlock()
}

// VerifyMessage checks the WriterSig carried by a protocol message against
// the (Key, TS, Cur, Prev) tuple it carries, consulting the cache.
func (c *Cache) VerifyMessage(m *wire.Message) error {
	return c.VerifyKeyed(m.Key, m.TS, m.Cur, m.Prev, m.WriterSig)
}

// Stats reports how many verifications were answered from the cache versus
// performed with asymmetric crypto.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
