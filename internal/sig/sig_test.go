package sig

import (
	"encoding/hex"
	"errors"
	"testing"
	"testing/quick"

	"fastread/internal/types"
	"fastread/internal/wire"
)

func TestSignVerifyRoundTrip(t *testing.T) {
	kp := MustKeyPair()
	sigBytes, err := kp.Signer.Sign(3, types.Value("v3"), types.Value("v2"))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := kp.Verifier.Verify(3, types.Value("v3"), types.Value("v2"), sigBytes); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestVerifyRejectsTamperedFields(t *testing.T) {
	kp := MustKeyPair()
	sigBytes := kp.Signer.MustSign(3, types.Value("v3"), types.Value("v2"))

	if err := kp.Verifier.Verify(4, types.Value("v3"), types.Value("v2"), sigBytes); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered ts: err = %v, want ErrBadSignature", err)
	}
	if err := kp.Verifier.Verify(3, types.Value("x"), types.Value("v2"), sigBytes); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered cur: err = %v", err)
	}
	if err := kp.Verifier.Verify(3, types.Value("v3"), types.Value("y"), sigBytes); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered prev: err = %v", err)
	}
	bad := append([]byte(nil), sigBytes...)
	bad[0] ^= 0xFF
	if err := kp.Verifier.Verify(3, types.Value("v3"), types.Value("v2"), bad); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered signature: err = %v", err)
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	kp1 := MustKeyPair()
	kp2 := MustKeyPair()
	sigBytes := kp1.Signer.MustSign(1, types.Value("v"), types.Bottom())
	if err := kp2.Verifier.Verify(1, types.Value("v"), types.Bottom(), sigBytes); !errors.Is(err, ErrBadSignature) {
		t.Errorf("verify with wrong key: err = %v, want ErrBadSignature", err)
	}
}

func TestInitialTimestampUnsigned(t *testing.T) {
	kp := MustKeyPair()
	if err := kp.Verifier.Verify(0, types.Bottom(), types.Bottom(), nil); err != nil {
		t.Errorf("timestamp 0 with empty signature should verify, got %v", err)
	}
	if err := kp.Verifier.Verify(0, types.Value("x"), types.Bottom(), nil); err == nil {
		t.Error("timestamp 0 with a non-⊥ value must not verify")
	}
	if err := kp.Verifier.Verify(0, types.Bottom(), types.Bottom(), []byte{1}); err == nil {
		t.Error("timestamp 0 with a non-empty signature must not verify")
	}
}

func TestSignerWithoutKeyFails(t *testing.T) {
	var s *Signer
	if _, err := s.Sign(1, types.Value("v"), nil); !errors.Is(err, ErrNoSigner) {
		t.Errorf("nil signer: err = %v, want ErrNoSigner", err)
	}
	empty := &Signer{}
	if _, err := empty.Sign(1, types.Value("v"), nil); !errors.Is(err, ErrNoSigner) {
		t.Errorf("empty signer: err = %v, want ErrNoSigner", err)
	}
}

func TestVerifierWithoutKeyRejectsEverything(t *testing.T) {
	kp := MustKeyPair()
	sigBytes := kp.Signer.MustSign(1, types.Value("v"), nil)
	var v Verifier
	if err := v.Verify(1, types.Value("v"), nil, sigBytes); err == nil {
		t.Error("zero verifier accepted a signature")
	}
	if err := v.Verify(0, types.Bottom(), types.Bottom(), nil); err != nil {
		t.Errorf("zero verifier should still accept timestamp 0, got %v", err)
	}
}

func TestPublicKeyDistribution(t *testing.T) {
	kp := MustKeyPair()
	pub := kp.Verifier.PublicKey()
	v2, err := VerifierFromPublicKey(pub)
	if err != nil {
		t.Fatalf("VerifierFromPublicKey: %v", err)
	}
	sigBytes := kp.Signer.MustSign(2, types.Value("v2"), types.Value("v1"))
	if err := v2.Verify(2, types.Value("v2"), types.Value("v1"), sigBytes); err != nil {
		t.Errorf("reconstructed verifier rejected a valid signature: %v", err)
	}
	if _, err := VerifierFromPublicKey([]byte{1, 2, 3}); err == nil {
		t.Error("short public key accepted")
	}
	// Mutating the returned slice must not affect the verifier.
	pub[0] ^= 0xFF
	if err := kp.Verifier.Verify(2, types.Value("v2"), types.Value("v1"), sigBytes); err != nil {
		t.Errorf("verifier state was aliased by PublicKey(): %v", err)
	}
}

func TestVerifyMessage(t *testing.T) {
	kp := MustKeyPair()
	m := &wire.Message{
		Op:        wire.OpReadAck,
		TS:        5,
		Cur:       types.Value("v5"),
		Prev:      types.Value("v4"),
		WriterSig: kp.Signer.MustSign(5, types.Value("v5"), types.Value("v4")),
	}
	if err := kp.Verifier.VerifyMessage(m); err != nil {
		t.Errorf("VerifyMessage: %v", err)
	}
	m.TS = 6
	if err := kp.Verifier.VerifyMessage(m); err == nil {
		t.Error("VerifyMessage accepted a message with a mismatched timestamp")
	}
}

func TestSignerVerifierPairMatches(t *testing.T) {
	kp := MustKeyPair()
	v := kp.Signer.Verifier()
	sigBytes := kp.Signer.MustSign(9, types.Value("x"), nil)
	if err := v.Verify(9, types.Value("x"), nil, sigBytes); err != nil {
		t.Errorf("Signer.Verifier() mismatch: %v", err)
	}
}

// Property: a signature only verifies for the exact triple that was signed.
func TestForgedTripleNeverVerifies(t *testing.T) {
	kp := MustKeyPair()
	f := func(ts uint16, cur, prev, otherCur []byte, bump uint8) bool {
		realTS := types.Timestamp(ts) + 1
		sigBytes := kp.Signer.MustSign(realTS, cur, prev)
		if kp.Verifier.Verify(realTS, cur, prev, sigBytes) != nil {
			return false
		}
		// A different timestamp must not verify.
		if kp.Verifier.Verify(realTS+types.Timestamp(bump)+1, cur, prev, sigBytes) == nil {
			return false
		}
		// A different current value must not verify (unless it is equal).
		if string(otherCur) != string(cur) {
			if kp.Verifier.Verify(realTS, otherCur, prev, sigBytes) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestVerifierFromHex(t *testing.T) {
	kp := MustKeyPair()
	hexKey := hex.EncodeToString(kp.Verifier.PublicKey())
	for _, form := range []string{hexKey, "0x" + hexKey, "  " + hexKey + "\n"} {
		v, err := VerifierFromHex(form)
		if err != nil {
			t.Fatalf("VerifierFromHex(%q): %v", form, err)
		}
		signature := kp.Signer.MustSign(1, types.Value("x"), nil)
		if err := v.Verify(1, types.Value("x"), nil, signature); err != nil {
			t.Errorf("round-tripped verifier rejected a valid signature: %v", err)
		}
	}
	if _, err := VerifierFromHex("zz"); err == nil {
		t.Error("invalid hex accepted")
	}
	if _, err := VerifierFromHex("abcd"); err == nil {
		t.Error("short key accepted")
	}
}
