package sig

import (
	"sync"
	"testing"

	"fastread/internal/types"
)

func TestCacheVerifiesAndMemoises(t *testing.T) {
	kp := MustKeyPair()
	cur, prev := types.Value("v7"), types.Value("v6")
	signature := kp.Signer.MustSignKeyed("k", 7, cur, prev)

	c := NewCache(kp.Verifier, 8)
	for i := 0; i < 5; i++ {
		if err := c.VerifyKeyed("k", 7, cur, prev, signature); err != nil {
			t.Fatalf("verify %d: %v", i, err)
		}
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != 4 {
		t.Errorf("hits=%d misses=%d, want 4/1", hits, misses)
	}
}

func TestCacheRejectsBadSignatures(t *testing.T) {
	kp := MustKeyPair()
	cur, prev := types.Value("v"), types.Bottom()
	signature := kp.Signer.MustSignKeyed("k", 3, cur, prev)
	c := NewCache(kp.Verifier, 8)

	// Wrong tuple under a valid signature must fail, repeatedly (failures are
	// never cached).
	for i := 0; i < 3; i++ {
		if err := c.VerifyKeyed("k", 4, cur, prev, signature); err == nil {
			t.Fatal("accepted signature for the wrong timestamp")
		}
		if err := c.VerifyKeyed("other", 3, cur, prev, signature); err == nil {
			t.Fatal("accepted signature for the wrong register key")
		}
	}
	// Corrupted signature bytes must fail even after the valid tuple was
	// cached (the digest covers the signature).
	if err := c.VerifyKeyed("k", 3, cur, prev, signature); err != nil {
		t.Fatalf("valid verify: %v", err)
	}
	bad := append([]byte(nil), signature...)
	bad[0] ^= 0xFF
	if err := c.VerifyKeyed("k", 3, cur, prev, bad); err == nil {
		t.Fatal("accepted a corrupted signature")
	}
	if hits, _ := c.Stats(); hits != 0 {
		t.Errorf("failed verifications produced %d cache hits", hits)
	}
}

func TestCacheTimestampZeroBypass(t *testing.T) {
	kp := MustKeyPair()
	c := NewCache(kp.Verifier, 8)
	if err := c.VerifyKeyed("k", types.InitialTimestamp, types.Bottom(), types.Bottom(), nil); err != nil {
		t.Fatalf("ts=0 with empty signature: %v", err)
	}
	if err := c.VerifyKeyed("k", types.InitialTimestamp, types.Value("x"), types.Bottom(), nil); err == nil {
		t.Fatal("ts=0 with a non-bottom value accepted")
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 0 {
		t.Errorf("ts=0 touched the cache: hits=%d misses=%d", hits, misses)
	}
}

func TestCacheBoundedEviction(t *testing.T) {
	kp := MustKeyPair()
	c := NewCache(kp.Verifier, 4)
	cur := types.Value("v")
	for ts := types.Timestamp(1); ts <= 20; ts++ {
		signature := kp.Signer.MustSignKeyed("k", ts, cur, types.Bottom())
		if err := c.VerifyKeyed("k", ts, cur, types.Bottom(), signature); err != nil {
			t.Fatalf("ts=%d: %v", ts, err)
		}
	}
	if n := len(c.cur) + len(c.prev); n > 8 {
		t.Errorf("cache holds %d entries, want <= 2x capacity (8)", n)
	}
	// The most recent entry must still hit.
	signature := kp.Signer.MustSignKeyed("k", 20, cur, types.Bottom())
	before, _ := c.Stats()
	if err := c.VerifyKeyed("k", 20, cur, types.Bottom(), signature); err != nil {
		t.Fatal(err)
	}
	if after, _ := c.Stats(); after != before+1 {
		t.Error("most recent entry was evicted")
	}
}

func TestCacheConcurrent(t *testing.T) {
	kp := MustKeyPair()
	c := NewCache(kp.Verifier, 64)
	cur := types.Value("v")
	sigs := make([][]byte, 8)
	for i := range sigs {
		sigs[i] = kp.Signer.MustSignKeyed("k", types.Timestamp(i+1), cur, types.Bottom())
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ts := types.Timestamp(i%len(sigs) + 1)
				if err := c.VerifyKeyed("k", ts, cur, types.Bottom(), sigs[ts-1]); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
