// Package sig provides the digital-signature substrate required by the
// arbitrary-failure algorithm of Section 6 (paper Figure 5).
//
// The paper assumes the writer digitally signs each (timestamp, value) pair
// [Rivest, Shamir, Adleman 1978] and relies on exactly two properties:
//
//	Authentication: readers can check that a value returned by a server was
//	in fact written by the writer.
//	Unforgeability: it is impossible to forge the writer's signature.
//
// We substitute Ed25519 (crypto/ed25519, standard library) for RSA; both
// properties carry over unchanged and the substitution is documented in
// DESIGN.md. The initial register value ⊥ at timestamp 0 is, as in the
// paper, not signed: verifiers accept timestamp 0 with an empty signature.
package sig

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"strings"

	"fastread/internal/types"
	"fastread/internal/wire"
)

// Errors returned by this package.
var (
	// ErrBadSignature indicates a signature that does not verify.
	ErrBadSignature = errors.New("sig: signature verification failed")
	// ErrNoSigner indicates an attempt to sign without a private key.
	ErrNoSigner = errors.New("sig: signer has no private key")
)

// Signer holds the writer's private key and signs timestamp/value triples.
type Signer struct {
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
}

// Verifier holds the writer's public key and verifies signed triples. A zero
// Verifier (no key) accepts nothing but timestamp 0.
type Verifier struct {
	pub ed25519.PublicKey
}

// KeyPair bundles the writer's signer with the verifier distributed to
// readers and servers.
type KeyPair struct {
	Signer   *Signer
	Verifier Verifier
}

// NewKeyPair generates a fresh writer key pair from the given entropy source
// (nil means crypto/rand.Reader).
func NewKeyPair(entropy io.Reader) (KeyPair, error) {
	if entropy == nil {
		entropy = rand.Reader
	}
	pub, priv, err := ed25519.GenerateKey(entropy)
	if err != nil {
		return KeyPair{}, fmt.Errorf("sig: generate key: %w", err)
	}
	return KeyPair{
		Signer:   &Signer{priv: priv, pub: pub},
		Verifier: Verifier{pub: pub},
	}, nil
}

// MustKeyPair is NewKeyPair with a panic on failure, for tests and examples.
func MustKeyPair() KeyPair {
	kp, err := NewKeyPair(nil)
	if err != nil {
		panic(err)
	}
	return kp
}

// PublicKey returns the verifier's raw public key bytes (for distribution to
// servers and readers over a separate trusted channel, as the paper assumes).
func (v Verifier) PublicKey() []byte {
	out := make([]byte, len(v.pub))
	copy(out, v.pub)
	return out
}

// VerifierFromPublicKey reconstructs a Verifier from raw public key bytes.
func VerifierFromPublicKey(pub []byte) (Verifier, error) {
	if len(pub) != ed25519.PublicKeySize {
		return Verifier{}, fmt.Errorf("sig: bad public key length %d", len(pub))
	}
	key := make(ed25519.PublicKey, ed25519.PublicKeySize)
	copy(key, pub)
	return Verifier{pub: key}, nil
}

// VerifierFromHex rebuilds a verifier from a hex-encoded public key,
// tolerating surrounding whitespace and an optional 0x prefix. It is the
// single parser behind every CLI key flag, so the accepted formats cannot
// drift between binaries.
func VerifierFromHex(hexKey string) (Verifier, error) {
	raw, err := hex.DecodeString(strings.TrimPrefix(strings.TrimSpace(hexKey), "0x"))
	if err != nil {
		return Verifier{}, fmt.Errorf("sig: decode hex public key: %w", err)
	}
	return VerifierFromPublicKey(raw)
}

// SignKeyed produces the writer's signature over the (key, ts, cur, prev)
// tuple using the canonical byte encoding of wire.KeyedSignedBytes. The
// register key is part of the signed bytes so that values signed for one
// register of a multi-register deployment cannot be replayed into another.
func (s *Signer) SignKeyed(key string, ts types.Timestamp, cur, prev types.Value) ([]byte, error) {
	if s == nil || len(s.priv) == 0 {
		return nil, ErrNoSigner
	}
	return ed25519.Sign(s.priv, wire.KeyedSignedBytes(key, ts, cur, prev)), nil
}

// Sign is SignKeyed for the default register (empty key).
func (s *Signer) Sign(ts types.Timestamp, cur, prev types.Value) ([]byte, error) {
	return s.SignKeyed("", ts, cur, prev)
}

// MustSign is Sign with a panic on failure; signing can only fail if the
// signer was constructed without a key, which is a programming error.
func (s *Signer) MustSign(ts types.Timestamp, cur, prev types.Value) []byte {
	sigBytes, err := s.Sign(ts, cur, prev)
	if err != nil {
		panic(err)
	}
	return sigBytes
}

// MustSignKeyed is SignKeyed with a panic on failure.
func (s *Signer) MustSignKeyed(key string, ts types.Timestamp, cur, prev types.Value) []byte {
	sigBytes, err := s.SignKeyed(key, ts, cur, prev)
	if err != nil {
		panic(err)
	}
	return sigBytes
}

// Verifier returns the verifier matching this signer's public key.
func (s *Signer) Verifier() Verifier { return Verifier{pub: s.pub} }

// VerifyKeyed checks the writer's signature over the (key, ts, cur, prev)
// tuple. Timestamp 0 (the initial value ⊥) is accepted with an empty
// signature and bottom values, mirroring the paper's convention that the
// initial value is not signed by the writer; this holds for every register
// key, since every register starts at ⊥.
func (v Verifier) VerifyKeyed(key string, ts types.Timestamp, cur, prev types.Value, signature []byte) error {
	if ts == types.InitialTimestamp {
		if len(signature) == 0 && cur.IsBottom() && prev.IsBottom() {
			return nil
		}
		return fmt.Errorf("%w: non-empty signature or value at timestamp 0", ErrBadSignature)
	}
	if len(v.pub) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: verifier has no public key", ErrBadSignature)
	}
	if len(signature) != ed25519.SignatureSize {
		return fmt.Errorf("%w: bad signature length %d", ErrBadSignature, len(signature))
	}
	if !ed25519.Verify(v.pub, wire.KeyedSignedBytes(key, ts, cur, prev), signature) {
		return ErrBadSignature
	}
	return nil
}

// Verify is VerifyKeyed for the default register (empty key).
func (v Verifier) Verify(ts types.Timestamp, cur, prev types.Value, signature []byte) error {
	return v.VerifyKeyed("", ts, cur, prev, signature)
}

// VerifyMessage checks the WriterSig carried by a protocol message against
// the (Key, TS, Cur, Prev) tuple it carries.
func (v Verifier) VerifyMessage(m *wire.Message) error {
	return v.VerifyKeyed(m.Key, m.TS, m.Cur, m.Prev, m.WriterSig)
}
