// Async adapters: the protocol packages implement their pipelined operations
// on protoutil's generic Future, each with its own rich result type; the
// helpers here fold those into the registry's uniform WriteFuture/ReadFuture
// so every driver adapts identically.
package driver

import (
	"context"

	"fastread/internal/protoutil"
	"fastread/internal/types"
)

// ProtocolWriter is the shape every protocol package's writer shares; Adapt
// it to the registry's Writer interface with AdaptWriter.
type ProtocolWriter interface {
	Write(ctx context.Context, v types.Value) error
	WriteAsync(ctx context.Context, v types.Value) (*protoutil.Future[struct{}], error)
	Stats() (writes, roundTrips int64)
}

// AdaptWriter wraps a protocol writer into the uniform Writer interface.
func AdaptWriter(w ProtocolWriter) Writer { return writerAdapter{w} }

type writerAdapter struct{ w ProtocolWriter }

func (a writerAdapter) Write(ctx context.Context, v types.Value) error { return a.w.Write(ctx, v) }

func (a writerAdapter) WriteAsync(ctx context.Context, v types.Value) (WriteFuture, error) {
	f, err := a.w.WriteAsync(ctx, v)
	if err != nil {
		return nil, err
	}
	return writeFuture{f}, nil
}

func (a writerAdapter) Stats() (int64, int64) { return a.w.Stats() }

// writeFuture folds the engine's error-only future into WriteFuture.
type writeFuture struct{ f *protoutil.Future[struct{}] }

func (w writeFuture) Done() <-chan struct{} { return w.f.Done() }

func (w writeFuture) Result(ctx context.Context) error {
	_, err := w.f.Result(ctx)
	return err
}

// ReadFutureOf folds a protocol-specific read future into the uniform
// ReadFuture by converting its result with conv once resolved.
func ReadFutureOf[T any](f *protoutil.Future[T], conv func(T) ReadResult) ReadFuture {
	return readFuture[T]{f: f, conv: conv}
}

type readFuture[T any] struct {
	f    *protoutil.Future[T]
	conv func(T) ReadResult
}

func (r readFuture[T]) Done() <-chan struct{} { return r.f.Done() }

func (r readFuture[T]) Result(ctx context.Context) (ReadResult, error) {
	res, err := r.f.Result(ctx)
	if err != nil {
		return ReadResult{}, err
	}
	return r.conv(res), nil
}
