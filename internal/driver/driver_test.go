package driver

import (
	"errors"
	"testing"

	"fastread/internal/quorum"
	"fastread/internal/transport"
)

// fakeDriver returns a minimally complete driver for registry tests.
func fakeDriver(name string) Driver {
	return Driver{
		Name:      name,
		Validate:  func(quorum.Config) error { return nil },
		NewServer: func(ServerConfig, transport.Node) (Server, error) { return nil, nil },
		NewWriter: func(ClientConfig, transport.Node) (Writer, error) { return nil, nil },
		NewReader: func(ClientConfig, transport.Node) (Reader, error) { return nil, nil },
	}
}

func TestRegisterLookupNames(t *testing.T) {
	Register(fakeDriver("test-proto-a"))
	Register(fakeDriver("test-proto-b"))

	if _, ok := Lookup("test-proto-a"); !ok {
		t.Fatal("registered driver not found")
	}
	if _, ok := Lookup("no-such-proto"); ok {
		t.Fatal("Lookup invented a driver")
	}
	names := Names()
	seen := make(map[string]bool, len(names))
	for i, n := range names {
		seen[n] = true
		if i > 0 && names[i-1] > n {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	if !seen["test-proto-a"] || !seen["test-proto-b"] {
		t.Fatalf("Names missing registered drivers: %v", names)
	}
}

func TestRegisterPanicsOnDuplicate(t *testing.T) {
	Register(fakeDriver("test-proto-dup"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(fakeDriver("test-proto-dup"))
}

func TestRegisterPanicsOnIncomplete(t *testing.T) {
	d := fakeDriver("test-proto-incomplete")
	d.NewReader = nil
	defer func() {
		if recover() == nil {
			t.Fatal("incomplete driver did not panic")
		}
	}()
	Register(d)
}

func TestMajorityValidate(t *testing.T) {
	check := MajorityValidate("abd")
	if err := check(quorum.Config{Servers: 5, Faulty: 2, Readers: 3}); err != nil {
		t.Fatalf("t < S/2 rejected: %v", err)
	}
	if err := check(quorum.Config{Servers: 4, Faulty: 2, Readers: 3}); err == nil {
		t.Fatal("t = S/2 accepted")
	}
}

func TestErrTooManyReadersIsSentinel(t *testing.T) {
	wrapped := errors.Join(ErrTooManyReaders)
	if !errors.Is(wrapped, ErrTooManyReaders) {
		t.Fatal("sentinel does not survive wrapping")
	}
}
