// Package driver is the protocol driver registry: the seam between the
// public Store/Cluster API (and the cmd binaries) and the individual register
// protocol implementations.
//
// Each protocol package (core, abd, maxmin, regular) registers one Driver per
// protocol name in an init function; anything that wants to deploy a protocol
// looks the driver up by name and uses its uniform factories. This is what
// lets the public API and the TCP binaries serve every protocol without a
// per-protocol switch: adding a protocol is adding one driver.go file to its
// package plus a blank import at the deployment sites.
//
// The handle interfaces (Server, Writer, Reader) are the least common
// denominator of the four protocols. Writers and servers already share their
// shapes across packages and satisfy the interfaces directly; readers return
// protocol-specific result structs and are adapted in each package's
// driver.go.
package driver

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"fastread/internal/durable"
	"fastread/internal/quorum"
	"fastread/internal/sig"
	"fastread/internal/transport"
	"fastread/internal/types"
)

// ErrTooManyReaders indicates a deployment shape that violates the selected
// protocol's reader bound (the paper's R < S/t − 2, its Byzantine analogue,
// or an implementation limit). It is re-exported by the public fastread
// package so callers can match it with errors.Is.
var ErrTooManyReaders = errors.New("fastread: too many readers for a fast implementation")

// ReadResult is the uniform outcome of a read, independent of which protocol
// produced it.
type ReadResult struct {
	// Value is the value read; ⊥ (nil) means the register still holds its
	// initial value.
	Value types.Value
	// Timestamp is the logical timestamp of the returned value (0 for ⊥).
	Timestamp types.Timestamp
	// RoundTrips is the number of client↔server round-trips the read used.
	RoundTrips int
	// UsedFallback is true when a fast read returned the previous value
	// because the seen-set predicate did not hold for the newest one. Always
	// false for the non-fast protocols.
	UsedFallback bool
}

// Server is a running protocol server process. A server multiplexes every
// register of the deployment; Stop detaches it from the network and waits for
// its executor to drain.
type Server interface {
	Start()
	Stop()
	// Workers reports the number of key-shard workers the server's executor
	// actually runs (after defaulting), for operator-facing logs.
	Workers() int
	// TotalMutations counts state mutations across every register, for the
	// "atomic reads must write" accounting of the paper's Section 8.
	// Protocols that do not track mutations report 0.
	TotalMutations() int64
}

// WriteFuture is one submitted write's pending resolution.
type WriteFuture interface {
	// Done closes when the write resolves.
	Done() <-chan struct{}
	// Result blocks until the write resolves and returns its outcome. If ctx
	// ends first the write's wait is abandoned (sibling in-flight operations
	// on the handle are untouched) and the context error returned.
	Result(ctx context.Context) error
}

// ReadFuture is one submitted read's pending resolution.
type ReadFuture interface {
	// Done closes when the read resolves.
	Done() <-chan struct{}
	// Result blocks until the read resolves and returns its outcome. If ctx
	// ends first the read is aborted (sibling in-flight operations on the
	// handle are untouched) and the context error returned.
	Result(ctx context.Context) (ReadResult, error)
}

// Writer is a register's single write handle. WriteAsync pipelines: up to
// the configured depth of writes stay in flight per handle, applied by
// servers in submission order (the SWMR regime survives pipelining). Write
// is WriteAsync at depth one.
type Writer interface {
	Write(ctx context.Context, v types.Value) error
	WriteAsync(ctx context.Context, v types.Value) (WriteFuture, error)
	// Stats reports completed writes and the round-trips they used.
	Stats() (writes, roundTrips int64)
}

// Reader is one of a register's read handles. ReadAsync pipelines: up to the
// configured depth of reads stay in flight per handle, each an independent
// state machine keyed by the protocol's per-operation nonce. Read is
// ReadAsync at depth one.
type Reader interface {
	Read(ctx context.Context) (ReadResult, error)
	ReadAsync(ctx context.Context) (ReadFuture, error)
	// Stats reports completed reads, the round-trips they used, and how many
	// reads fell back to the previous value (0 for non-fast protocols).
	Stats() (reads, roundTrips, fallbacks int64)
}

// ServerConfig is the uniform server-side deployment description handed to
// every driver; each driver picks the fields its protocol needs.
type ServerConfig struct {
	// ID is the server's process identity.
	ID types.ProcessID
	// Quorum describes the deployment (S, t, b, R).
	Quorum quorum.Config
	// Verifier is the writer's public key, used by signature-verifying
	// drivers (fast-byz) and ignored by the crash-model drivers.
	Verifier sig.Verifier
	// Workers is the number of key-shard workers executing the server's
	// messages in parallel; zero or negative means GOMAXPROCS.
	Workers int
	// Durable, if non-nil, gives the server a write-ahead log in the given
	// directory (see internal/durable): mutations are logged before acks,
	// and server construction recovers whatever a previous incarnation
	// persisted there. Drivers that keep no durable state ignore it.
	Durable *durable.Options
	// QueueBound, when positive, caps each executor worker's overflow
	// queue: requests beyond it are shed and counted rather than queued
	// (see transport.Executor.SetQueueBound). Servers that shed SHOULD also
	// expose the running count through an optional
	//
	//	QueueSheds() int64
	//
	// method — Store.Stats discovers it by interface assertion, so drivers
	// without shedding (test canaries, wrappers) need not implement it.
	// Zero keeps the default never-drop queues.
	QueueBound int
}

// ClientConfig is the uniform client-side configuration handed to every
// driver's writer and reader factories.
type ClientConfig struct {
	// Key names the register the client operates on; the empty key is the
	// deployment's default register.
	Key string
	// Quorum describes the deployment (S, t, b, R).
	Quorum quorum.Config
	// Signer holds the writer's private key, used by signing drivers
	// (fast-byz) and ignored by the crash-model drivers.
	Signer *sig.Signer
	// Verifier is the writer's public key, used by signature-verifying
	// drivers and ignored by the crash-model drivers.
	Verifier sig.Verifier
	// Depth bounds the operations one handle keeps in flight through the
	// async API (WriteAsync/ReadAsync); non-positive selects the engine
	// default. Serial handles are unaffected: a blocking operation is the
	// depth-one case.
	Depth int
	// Nonce, when positive, fixes a reader's initial operation counter
	// instead of the wall-clock default (protoutil.InitialNonce).
	// Deterministic simulation injects virtual-clock microseconds here so
	// identical seeds produce identical wire traffic; writers ignore it.
	Nonce int64
}

// Driver is one register protocol's factory set. All fields are required.
type Driver struct {
	// Name is the registry key ("fast", "abd", ...); it matches the public
	// Protocol.String() names and the cmd binaries' -protocol flag.
	Name string
	// NeedsSignatures reports that the protocol authenticates writes with
	// the writer's key pair: deployments must provide a Signer to writers
	// and a Verifier to servers and readers. The cmd binaries use it to
	// decide which key flags are required.
	NeedsSignatures bool
	// Validate vets a deployment shape against the protocol's requirements,
	// beyond the generic quorum.Config.Validate.
	Validate func(q quorum.Config) error
	// NewServer builds a protocol server bound to the given transport node.
	NewServer func(cfg ServerConfig, node transport.Node) (Server, error)
	// NewWriter builds the per-key writer client.
	NewWriter func(cfg ClientConfig, node transport.Node) (Writer, error)
	// NewReader builds a per-key reader client.
	NewReader func(cfg ClientConfig, node transport.Node) (Reader, error)
}

// MajorityValidate returns the Validate function shared by the majority-
// quorum protocols (abd, maxmin, regular): they place no bound on the number
// of readers but need t < S/2 so that any two quorums intersect.
func MajorityValidate(name string) func(q quorum.Config) error {
	return func(q quorum.Config) error {
		if q.Majority() > q.AckQuorum() {
			return fmt.Errorf("fastread: %s requires t < S/2, got %v", name, q)
		}
		return nil
	}
}

var (
	mu       sync.RWMutex
	registry = make(map[string]Driver)
)

// Register adds a driver to the registry. It panics on a duplicate name or an
// incomplete driver: registration happens in protocol package init functions,
// where a mistake is a programming error, not a runtime condition.
func Register(d Driver) {
	if d.Name == "" || d.Validate == nil || d.NewServer == nil || d.NewWriter == nil || d.NewReader == nil {
		panic(fmt.Sprintf("driver: incomplete driver %+v", d))
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[d.Name]; dup {
		panic(fmt.Sprintf("driver: duplicate registration for %q", d.Name))
	}
	registry[d.Name] = d
}

// Lookup returns the driver registered under name.
func Lookup(name string) (Driver, bool) {
	mu.RLock()
	defer mu.RUnlock()
	d, ok := registry[name]
	return d, ok
}

// Names returns the registered protocol names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
