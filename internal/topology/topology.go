// Package topology partitions the register keyspace across independent
// replica groups.
//
// A deployment that keeps every key on every server caps its aggregate
// capacity at whatever one replica set can sustain. The paper's guarantee is
// per register, so correctness composes across DISJOINT server groups for
// free: a key served by group A never exchanges a message with group B, and
// each group is exactly the single-group deployment the proofs are about.
// What the composition needs is a placement function every process computes
// identically, with no directory service and no extra network hop — routing
// must stay a pure client-side computation so the fast protocols keep their
// optimal round-trip count.
//
// Ring is that function: a consistent-hash ring of virtual nodes built from
// the group names alone, hashed with the same FNV-1a the key-sharded
// executors already use (shard.HashBytes). Any two processes that agree on
// the ordered group list and the virtual-node count place every possible key
// identically, which is why Topology — the serializable deployment
// description shipped to every server and client — is the ring's only input.
//
// Topology also carries what the ring does not need but a deployment does:
// each group's quorum parameters (S, t, b) and its member address book, so
// one JSON document describes a whole multi-group fleet for cmd/regserver
// and cmd/regclient.
package topology

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"

	"fastread/internal/shard"
)

// DefaultVirtualNodes is the per-group virtual-node count used when a ring
// is built with a non-positive one. 128 points per group keeps placement
// balanced within a few percent for realistic group counts while the whole
// ring stays small enough to scan-build in microseconds.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring mapping register keys onto group indexes.
// It is immutable after construction and safe for concurrent use; a Lookup
// is one hash plus one binary search and allocates nothing.
type Ring struct {
	points []ringPoint
	groups int
}

// ringPoint is one virtual node: the hash of "<group-name>#<replica>" and
// the index of the group that owns it.
type ringPoint struct {
	hash  uint64
	group int32
}

// NewRing builds the ring for the ordered group list. Group names must be
// non-empty and unique — the ring hashes names, so two groups sharing a name
// would own each other's keys. virtualNodes <= 0 selects
// DefaultVirtualNodes.
//
// Determinism contract: the ring is a pure function of (names, virtualNodes).
// Every process of a deployment must build it from the same ordered list —
// which is what sharing one serialized Topology guarantees — and then every
// process maps every key to the same group index with no communication.
func NewRing(names []string, virtualNodes int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("topology: a ring needs at least one group")
	}
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	seen := make(map[string]struct{}, len(names))
	r := &Ring{
		points: make([]ringPoint, 0, len(names)*virtualNodes),
		groups: len(names),
	}
	var buf []byte
	for gi, name := range names {
		if name == "" {
			return nil, fmt.Errorf("topology: group %d has an empty name", gi)
		}
		if _, dup := seen[name]; dup {
			return nil, fmt.Errorf("topology: duplicate group name %q", name)
		}
		seen[name] = struct{}{}
		for v := 0; v < virtualNodes; v++ {
			buf = append(buf[:0], name...)
			buf = append(buf, '#')
			buf = strconv.AppendInt(buf, int64(v), 10)
			r.points = append(r.points, ringPoint{hash: mix(shard.HashBytes(buf)), group: int32(gi)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		// Ties (astronomically rare for FNV-1a over distinct labels) break by
		// group index so the sorted order never depends on sort internals.
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.group < b.group
	})
	return r, nil
}

// Groups returns the number of groups on the ring.
func (r *Ring) Groups() int { return r.groups }

// VirtualNodes returns the total virtual-node count on the ring.
func (r *Ring) VirtualNodes() int { return len(r.points) }

// Lookup returns the index (into the ordered group list the ring was built
// from) of the group owning key.
func (r *Ring) Lookup(key string) int { return r.locate(mix(shard.Hash(key))) }

// LookupBytes is Lookup over a byte-slice key view, for callers routing on
// wire-format key views without materialising a string.
func (r *Ring) LookupBytes(key []byte) int { return r.locate(mix(shard.HashBytes(key))) }

// mix finalizes an FNV-1a hash for ring placement (murmur3's fmix64).
// FNV-1a distributes well across hash-table buckets (its low bits avalanche)
// but ring position is the FULL 64-bit value, and over near-identical labels
// like "g0#17"/"g0#18" the high bits barely move — unmixed, virtual nodes
// clump and group shares were off fair by 50%+. The finalizer is applied to
// both the points and the keys, so placement remains a pure deterministic
// function of the same FNV-1a base everything else shards by.
func mix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// locate finds the first virtual node at or clockwise after h, wrapping to
// the ring's start. Hand-rolled binary search: the hot path must not
// allocate, and a sort.Search closure capturing h is one escape-analysis
// regression away from doing so.
func (r *Ring) locate(h uint64) int {
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0
	}
	return int(r.points[lo].group)
}

// Topology is the serializable description of a partitioned deployment: the
// ordered replica groups, each with its own quorum parameters and member
// address book. One JSON document (see Parse/Encode/Load) is shared by every
// server and client process, making the ring — and therefore key placement —
// identical everywhere with no coordination.
type Topology struct {
	// VirtualNodes is the per-group virtual-node count for the ring; zero
	// means DefaultVirtualNodes. All processes must agree on it, which is why
	// it travels inside the document.
	VirtualNodes int `json:"virtual_nodes,omitempty"`
	// Epoch numbers the deployment's configuration generation. Durable
	// servers stamp it into every write-ahead segment and snapshot header and
	// REFUSE to recover state written under a different epoch, so a
	// reconfiguration (which must bump the epoch when it changes placement)
	// can never silently resurrect registers a server persisted under the
	// old keyspace layout. Zero is a valid epoch — the common case for a
	// deployment that has never been reconfigured.
	Epoch uint64 `json:"epoch,omitempty"`
	// Groups is the ORDERED group list. Ring lookups return indexes into it,
	// so reordering the list re-routes the keyspace: treat the order as part
	// of the deployment's identity.
	Groups []Group `json:"groups"`
}

// Group is one replica group: an independent S-server deployment owning the
// slice of the keyspace the ring assigns to its name.
type Group struct {
	// Name identifies the group on the ring. Renaming a group moves its keys.
	Name string `json:"name"`
	// Servers (S), Faulty (t) and Malicious (b) are the group's quorum
	// parameters. Groups may differ — a hot slice of the keyspace can run
	// wider than a cold one.
	Servers   int `json:"servers"`
	Faulty    int `json:"faulty"`
	Malicious int `json:"malicious,omitempty"`
	// Members maps textual process identities ("s1".."sS", "w", "r1"..) to
	// host:port addresses — the group's address book for socket transports.
	// Optional for in-memory deployments.
	Members map[string]string `json:"members,omitempty"`
}

// Validate checks the document's internal consistency: at least one group,
// unique non-empty names, and plausible per-group quorum shapes. Protocol
// bounds (the fast protocols' reader bound, t < S/2) are checked by the
// driver at deployment time, not here — the document does not know which
// protocol will run on it.
func (t Topology) Validate() error {
	if len(t.Groups) == 0 {
		return fmt.Errorf("topology: no groups")
	}
	seen := make(map[string]struct{}, len(t.Groups))
	for i, g := range t.Groups {
		if g.Name == "" {
			return fmt.Errorf("topology: group %d has an empty name", i)
		}
		if _, dup := seen[g.Name]; dup {
			return fmt.Errorf("topology: duplicate group name %q", g.Name)
		}
		seen[g.Name] = struct{}{}
		if g.Servers < 0 || g.Faulty < 0 || g.Malicious < 0 {
			return fmt.Errorf("topology: group %q has negative quorum parameters", g.Name)
		}
	}
	return nil
}

// GroupNames returns the ordered group names — the ring's input.
func (t Topology) GroupNames() []string {
	names := make([]string, len(t.Groups))
	for i, g := range t.Groups {
		names[i] = g.Name
	}
	return names
}

// GroupIndex resolves a group name to its index in the ordered list. Unknown
// names are an error, not a -1: a process configured for a group the
// topology does not contain is misconfigured and must not start.
func (t Topology) GroupIndex(name string) (int, error) {
	for i, g := range t.Groups {
		if g.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("topology: unknown group %q (have %v)", name, t.GroupNames())
}

// Ring builds the document's consistent-hash ring.
func (t Topology) Ring() (*Ring, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return NewRing(t.GroupNames(), t.VirtualNodes)
}

// Parse decodes and validates a JSON topology document.
func Parse(data []byte) (Topology, error) {
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return Topology{}, fmt.Errorf("topology: %w", err)
	}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

// Encode serializes the document as indented JSON, the on-disk form the CLI
// binaries consume.
func (t Topology) Encode() ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(t, "", "  ")
}

// Load reads and parses a topology file.
func Load(path string) (Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Topology{}, fmt.Errorf("topology: %w", err)
	}
	return Parse(data)
}
