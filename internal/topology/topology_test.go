package topology

import (
	"fmt"
	"testing"
)

// fourGroups is the canonical test document: four groups with distinct
// quorum shapes and partial member books.
func fourGroups() Topology {
	return Topology{
		Groups: []Group{
			{Name: "g0", Servers: 3, Faulty: 1},
			{Name: "g1", Servers: 3, Faulty: 1},
			{Name: "g2", Servers: 5, Faulty: 2},
			{Name: "g3", Servers: 3, Faulty: 1, Members: map[string]string{
				"s1": "10.0.0.1:7101", "w": "10.0.0.9:7200",
			}},
		},
	}
}

// TestRingDeterministicAcrossProcesses pins the cross-process determinism
// contract: two rings built independently from the SAME serialized document
// (the situation of two processes sharing one topology file) place every key
// identically, and the placement survives a serialize/parse round trip.
func TestRingDeterministicAcrossProcesses(t *testing.T) {
	topo := fourGroups()
	data, err := topo.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// "Process" A builds from the in-memory document, "process" B from the
	// decoded bytes — the deployment's actual distribution path.
	ringA, err := topo.Ring()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	ringB, err := parsed.Ring()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("user/%d/profile", i)
		a, b := ringA.Lookup(key), ringB.Lookup(key)
		if a != b {
			t.Fatalf("key %q: process A placed it on group %d, process B on %d", key, a, b)
		}
		if c := ringA.LookupBytes([]byte(key)); c != a {
			t.Fatalf("key %q: Lookup=%d but LookupBytes=%d", key, a, c)
		}
	}
}

// TestRingPlacementPinned pins a few concrete placements so an accidental
// change to the hash, the virtual-node label format or the search direction
// — any of which silently re-routes every deployed keyspace — fails loudly
// rather than shows up as a cross-version mismatch in production.
func TestRingPlacementPinned(t *testing.T) {
	ring, err := NewRing([]string{"g0", "g1", "g2", "g3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pinned := map[string]int{}
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("key-%03d", i)
		pinned[key] = ring.Lookup(key)
	}
	again, err := NewRing([]string{"g0", "g1", "g2", "g3"}, DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range pinned {
		if got := again.Lookup(key); got != want {
			t.Errorf("key %q: placement %d != %d across identical rings", key, got, want)
		}
	}
	// The group set (not just its size) determines placement: removing one
	// group must leave most keys on their old groups (consistent hashing's
	// point), and a ring over different names is a different placement.
	other, err := NewRing([]string{"h0", "h1", "h2", "h3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for key, want := range pinned {
		if other.Lookup(key) != want {
			moved++
		}
	}
	if moved == 0 {
		t.Error("renaming every group left every pinned key in place — ring ignores group names")
	}
}

// TestRingBalance checks placement balance: over a large uniform key sample,
// every group's share stays within ±20% of the fair share, for the group
// counts a deployment plausibly runs.
func TestRingBalance(t *testing.T) {
	const keys = 100000
	for _, groups := range []int{2, 4, 8} {
		names := make([]string, groups)
		for i := range names {
			names[i] = fmt.Sprintf("group-%d", i)
		}
		ring, err := NewRing(names, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, groups)
		for i := 0; i < keys; i++ {
			counts[ring.Lookup(fmt.Sprintf("account/%d/balance", i))]++
		}
		fair := float64(keys) / float64(groups)
		for gi, c := range counts {
			dev := (float64(c) - fair) / fair
			if dev < -0.20 || dev > 0.20 {
				t.Errorf("groups=%d: group %d owns %d of %d keys (%.1f%% off fair share %.0f)",
					groups, gi, c, keys, 100*dev, fair)
			}
		}
	}
}

// TestRingConsistentOnGroupRemoval checks the property that earns consistent
// hashing its keep: dropping one of four groups relocates ONLY (about) that
// group's keys — the other three keep theirs, so a reconfiguration does not
// reshuffle the world.
func TestRingConsistentOnGroupRemoval(t *testing.T) {
	const keys = 20000
	four, err := NewRing([]string{"g0", "g1", "g2", "g3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	three, err := NewRing([]string{"g0", "g1", "g2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("doc/%d", i)
		before := four.Lookup(key)
		after := three.Lookup(key)
		if before == 3 {
			continue // g3's keys must move somewhere; any destination is fine.
		}
		if before != after {
			moved++
		}
	}
	// Random (non-consistent) placement would move ~2/3 of the surviving
	// keys; consistent hashing moves none of them in the ideal and only a
	// few percent through virtual-node boundary shifts in practice.
	if limit := keys / 20; moved > limit {
		t.Errorf("removing one group moved %d of %d surviving keys (limit %d)", moved, keys, limit)
	}
}

// TestUnknownGroupRejected covers the misconfiguration guard: a process
// claiming membership of a group the topology does not define must be
// refused, not silently assigned elsewhere.
func TestUnknownGroupRejected(t *testing.T) {
	topo := fourGroups()
	if _, err := topo.GroupIndex("g4"); err == nil {
		t.Error("GroupIndex accepted an unknown group name")
	}
	if idx, err := topo.GroupIndex("g2"); err != nil || idx != 2 {
		t.Errorf("GroupIndex(g2) = %d, %v; want 2, nil", idx, err)
	}
}

// TestValidateRejectsMalformedDocuments covers the document-level guards.
func TestValidateRejectsMalformedDocuments(t *testing.T) {
	cases := []struct {
		name string
		topo Topology
	}{
		{"no groups", Topology{}},
		{"empty name", Topology{Groups: []Group{{Name: ""}}}},
		{"duplicate name", Topology{Groups: []Group{{Name: "g"}, {Name: "g"}}}},
		{"negative quorum", Topology{Groups: []Group{{Name: "g", Servers: -1}}}},
	}
	for _, tc := range cases {
		if err := tc.topo.Validate(); err == nil {
			t.Errorf("%s: Validate accepted it", tc.name)
		}
		if _, err := tc.topo.Ring(); err == nil {
			t.Errorf("%s: Ring built anyway", tc.name)
		}
	}
	if _, err := Parse([]byte("{not json")); err == nil {
		t.Error("Parse accepted malformed JSON")
	}
	if _, err := Parse([]byte(`{"groups":[]}`)); err == nil {
		t.Error("Parse accepted an empty group list")
	}
}

// TestRingLookupAllocationFree pins the routing hot-path contract: a lookup
// allocates nothing.
func TestRingLookupAllocationFree(t *testing.T) {
	ring, err := NewRing([]string{"g0", "g1", "g2", "g3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := "user/42/profile"
	keyBytes := []byte(key)
	allocs := testing.AllocsPerRun(1000, func() {
		_ = ring.Lookup(key)
		_ = ring.LookupBytes(keyBytes)
	})
	if allocs != 0 {
		t.Errorf("ring lookup allocates %.1f times per call pair, want 0", allocs)
	}
}
