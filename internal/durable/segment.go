package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk layout. A segment file is a fixed header followed by a sequence of
// length+CRC32C-framed records; a snapshot file has the same shape with its
// own magic (and the watermark where the segment index sits). Everything
// after the first frame that fails its length or checksum is unreachable by
// construction — the log is append-only, so a bad frame can only be a torn
// tail (or external corruption), and recovery trims it.
const (
	segMagic  = "FRWAL001"
	snapMagic = "FRSNP001"

	// fileHeaderLen is magic(8) + epoch(8) + index-or-watermark(8) + crc(4).
	fileHeaderLen = 28
	// frameHeaderLen is length(4) + crc(4).
	frameHeaderLen = 8
	// maxRecordLen bounds a frame's declared payload length, so a corrupt
	// length field cannot drive a giant allocation.
	maxRecordLen = 16 << 20
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on the
// platforms that matter).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrEpochMismatch reports durable state written under a different topology
// epoch than the one this server was started with. Recovery refuses to cross
// epochs: a reconfiguration must migrate or discard the old epoch's state
// explicitly, never replay it silently into the new one.
var ErrEpochMismatch = errors.New("durable: on-disk epoch does not match configured epoch")

// errTorn marks the first unreadable frame of a segment: a torn or truncated
// tail, or corruption. Recovery stops cleanly there and trims.
var errTorn = errors.New("durable: torn or corrupt record")

// appendFileHeader encodes a segment or snapshot header.
func appendFileHeader(dst []byte, magic string, epoch, index uint64) []byte {
	dst = append(dst, magic...)
	dst = binary.BigEndian.AppendUint64(dst, epoch)
	dst = binary.BigEndian.AppendUint64(dst, index)
	return binary.BigEndian.AppendUint32(dst, crc32.Checksum(dst[len(dst)-24:], castagnoli))
}

// parseFileHeader validates a header against the expected magic and epoch and
// returns its index (segment index or snapshot watermark). A wrong magic or
// checksum returns errTorn; a valid header with the wrong epoch returns
// ErrEpochMismatch.
func parseFileHeader(data []byte, magic string, epoch uint64) (uint64, error) {
	if len(data) < fileHeaderLen || string(data[:8]) != magic {
		return 0, errTorn
	}
	sum := binary.BigEndian.Uint32(data[24:28])
	if crc32.Checksum(data[:24], castagnoli) != sum {
		return 0, errTorn
	}
	if got := binary.BigEndian.Uint64(data[8:16]); got != epoch {
		return 0, fmt.Errorf("%w: on disk %d, configured %d", ErrEpochMismatch, got, epoch)
	}
	return binary.BigEndian.Uint64(data[16:24]), nil
}

// appendFrame encodes one record payload as a length+CRC32C frame.
func appendFrame(dst []byte, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// scanFrames walks the framed records in data (which starts AFTER the file
// header), calling fn with each intact payload. It returns the number of
// bytes consumed by intact frames and errTorn if it stopped at a bad one;
// fn's own error aborts the scan and is returned verbatim.
func scanFrames(data []byte, fn func(payload []byte) error) (int, error) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < frameHeaderLen {
			return off, errTorn
		}
		n := int(binary.BigEndian.Uint32(rest[:4]))
		if n > maxRecordLen || len(rest) < frameHeaderLen+n {
			return off, errTorn
		}
		payload := rest[frameHeaderLen : frameHeaderLen+n]
		if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(rest[4:8]) {
			return off, errTorn
		}
		if err := fn(payload); err != nil {
			if errors.Is(err, errTorn) {
				// A payload that checksums but does not decode is treated as
				// the torn point too: stop cleanly, trim from here.
				return off, errTorn
			}
			return off, err
		}
		off += frameHeaderLen + n
	}
	return off, nil
}
