// Package durable gives a protocol server crash-recoverable state: an
// append-only segment WAL, periodic snapshots that truncate dead segments,
// and a persisted monotonic incarnation counter.
//
// # On-disk layout
//
// A data directory holds wal-%016d.seg segment files, snap-%016d.snap
// snapshot files, and an INCARNATION text file. Every segment and snapshot
// starts with a 28-byte header (magic, topology epoch, index-or-watermark,
// CRC32C); records are framed as u32 length + u32 CRC32C(payload) + payload.
// Sealed segments and snapshot files are always fsynced; only the active
// segment's tail is subject to the configured fsync policy. Because the log
// is append-only, any unreadable frame can only be a torn tail (or external
// corruption) — recovery stops cleanly at the first bad frame and trims it.
//
// # Replay discipline
//
// Log.Append assigns each record a monotone LSN under the log lock, so LSN
// order is file order. A KindState snapshot record carries the LSN of the
// last delta its register reflects; during recovery a server must skip any
// KindDelta whose LSN is not greater than the restored state's. That rule is
// what makes the snapshot-while-appending overlap idempotent: a snapshot
// dump races ongoing appends by design, and without the LSN guard a replayed
// pre-snapshot delta would be applied a second time on top of newer state —
// for the fast register that would pollute a newer timestamp's seen set and
// could make the fast-read predicate hold spuriously.
//
// # Record ownership
//
// A Record handed to Hooks.Apply is valid only for the duration of the call
// and its byte fields alias the replay buffer: clone whatever the state
// retains, exactly as the live receive path clones at its retention point. A
// Record passed to Log.Append or emitted by Hooks.Dump is fully encoded
// before the call returns, so callers may alias live state (the server's
// stripe lock, held across both the mutation and the Append, keeps the bytes
// stable for that window).
package durable
