package durable

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Policy selects when appended records are forced to stable storage.
type Policy string

const (
	// FsyncAlways fsyncs inside every Append, before the caller acks the
	// client: nothing acknowledged is ever lost.
	FsyncAlways Policy = "always"
	// FsyncInterval fsyncs on a background ticker (Options.FsyncEvery): a
	// crash loses at most one interval of acknowledged writes.
	FsyncInterval Policy = "interval"
	// FsyncNever leaves flushing to the OS page cache: a process crash is
	// survivable (the kernel still has the writes), a machine crash is not.
	FsyncNever Policy = "never"
)

const (
	defaultSegmentBytes  = 4 << 20
	defaultSnapshotEvery = 4096
	defaultFsyncEvery    = 100 * time.Millisecond

	incarnationFile = "INCARNATION"
)

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("durable: log closed")

// Options configures one server's durable log.
type Options struct {
	// Dir is the server's private data directory (created if absent). No two
	// live logs may share a directory.
	Dir string
	// Fsync is the flush policy; empty means FsyncInterval.
	Fsync Policy
	// FsyncEvery is the FsyncInterval period; 0 means 100ms.
	FsyncEvery time.Duration
	// SegmentBytes rotates the active segment past this size; 0 means 4MiB.
	SegmentBytes int64
	// SnapshotEvery triggers a background snapshot after that many appends.
	// 0 means the 4096 default; negative disables automatic snapshots
	// (Snapshot can still be called explicitly — the deterministic simulation
	// disables the background trigger because its timing is wall-clock).
	SnapshotEvery int
	// Epoch is the topology epoch stamped into every segment and snapshot
	// header. Open refuses to recover state written under a different epoch.
	Epoch uint64
	// SimulateCrash makes Close model a machine crash instead of a graceful
	// shutdown: the active segment is truncated back to its last-fsynced
	// offset and no final flush or snapshot runs. Testing/simulation knob.
	SimulateCrash bool
	// Counters, when non-nil, is where the log publishes its counters (so an
	// owner can aggregate across servers); nil uses a private set.
	Counters *Counters
}

// Hooks connect the log to the protocol server that owns the state.
type Hooks struct {
	// Apply replays one recovered record into server state during Open. The
	// record is valid only for the duration of the call and its byte fields
	// alias the replay buffer. A nil Apply validates records without applying
	// them. An Apply error aborts recovery.
	Apply func(*Record) error
	// Dump emits the server's complete current state, one KindState record
	// per register, via emit. Called without the log lock held (so emitting
	// may take the server's own locks). nil disables snapshots.
	Dump func(emit func(*Record) error) error
}

// Counters are the log's cumulative statistics. All fields are atomic so the
// hot path never takes a lock to bump them and owners read them live.
type Counters struct {
	Appends          atomic.Int64
	Fsyncs           atomic.Int64
	Snapshots        atomic.Int64
	SnapshotRecords  atomic.Int64
	SegmentsReplayed atomic.Int64
	RecordsRecovered atomic.Int64
	TornTailTrims    atomic.Int64
	AppendErrors     atomic.Int64
	Incarnation      atomic.Uint64
}

// Stats is a point-in-time copy of Counters.
type Stats struct {
	Appends          int64
	Fsyncs           int64
	Snapshots        int64
	SnapshotRecords  int64
	SegmentsReplayed int64
	RecordsRecovered int64
	TornTailTrims    int64
	AppendErrors     int64
	Incarnation      uint64
}

// Snapshot copies the counters.
func (c *Counters) Snapshot() Stats {
	return Stats{
		Appends:          c.Appends.Load(),
		Fsyncs:           c.Fsyncs.Load(),
		Snapshots:        c.Snapshots.Load(),
		SnapshotRecords:  c.SnapshotRecords.Load(),
		SegmentsReplayed: c.SegmentsReplayed.Load(),
		RecordsRecovered: c.RecordsRecovered.Load(),
		TornTailTrims:    c.TornTailTrims.Load(),
		AppendErrors:     c.AppendErrors.Load(),
		Incarnation:      c.Incarnation.Load(),
	}
}

// Add accumulates s into an aggregate (incarnation takes the max — it is an
// identity, not a tally).
func (s *Stats) Add(o Stats) {
	s.Appends += o.Appends
	s.Fsyncs += o.Fsyncs
	s.Snapshots += o.Snapshots
	s.SnapshotRecords += o.SnapshotRecords
	s.SegmentsReplayed += o.SegmentsReplayed
	s.RecordsRecovered += o.RecordsRecovered
	s.TornTailTrims += o.TornTailTrims
	s.AppendErrors += o.AppendErrors
	if o.Incarnation > s.Incarnation {
		s.Incarnation = o.Incarnation
	}
}

// Log is one server's durable state: an append-only segment WAL plus periodic
// snapshots, with a persisted incarnation counter. Open recovers whatever is
// on disk (replaying through Hooks.Apply) before returning.
type Log struct {
	opts     Options
	hooks    Hooks
	counters *Counters

	incarnation uint64

	mu        sync.Mutex
	dirf      *os.File
	f         *os.File // active segment
	segIndex  uint64
	written   int64 // bytes written to the active segment
	synced    int64 // bytes known fsynced in the active segment
	lsn       int64 // last assigned LSN
	sinceSnap int
	firstErr  error
	closed    bool

	payloadBuf []byte
	frameBuf   []byte

	snapMu   sync.Mutex // serializes snapshot runs
	snapCh   chan struct{}
	stopCh   chan struct{}
	stopping atomic.Bool
	wg       sync.WaitGroup
}

// fsync forces f down unless the policy is FsyncNever — under "never" the
// caller asked for page-cache-only durability, so even structural syncs
// (headers, seals, the incarnation file) are skipped. The synced-offset
// bookkeeping is maintained regardless, which is what keeps SimulateCrash
// truncation deterministic.
func (l *Log) fsync(f *os.File) error {
	if l.opts.Fsync == FsyncNever {
		return nil
	}
	if err := f.Sync(); err != nil {
		return err
	}
	l.counters.Fsyncs.Add(1)
	return nil
}

func (l *Log) syncDir() error {
	if l.opts.Fsync == FsyncNever {
		return nil
	}
	return l.dirf.Sync()
}

func segmentName(i uint64) string  { return fmt.Sprintf("wal-%016d.seg", i) }
func snapshotName(i uint64) string { return fmt.Sprintf("snap-%016d.snap", i) }

func parseIndexedName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(mid, 10, 64)
	return n, err == nil
}

// Open creates or recovers the log in opts.Dir: it bumps and persists the
// incarnation counter, restores state from the newest intact snapshot plus a
// replay of the surviving segment tail (trimming a torn final record), and
// leaves a fresh active segment ready for appends. State written under a
// different Epoch fails with ErrEpochMismatch.
func Open(opts Options, hooks Hooks) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("durable: Options.Dir is required")
	}
	if opts.Fsync == "" {
		opts.Fsync = FsyncInterval
	}
	switch opts.Fsync {
	case FsyncAlways, FsyncInterval, FsyncNever:
	default:
		return nil, fmt.Errorf("durable: unknown fsync policy %q", opts.Fsync)
	}
	if opts.FsyncEvery <= 0 {
		opts.FsyncEvery = defaultFsyncEvery
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = defaultSnapshotEvery
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	dirf, err := os.Open(opts.Dir)
	if err != nil {
		return nil, err
	}
	l := &Log{
		opts:     opts,
		hooks:    hooks,
		counters: opts.Counters,
		dirf:     dirf,
		snapCh:   make(chan struct{}, 1),
		stopCh:   make(chan struct{}),
	}
	if l.counters == nil {
		l.counters = &Counters{}
	}
	if err := l.bumpIncarnation(); err != nil {
		dirf.Close()
		return nil, err
	}
	if err := l.recover(); err != nil {
		dirf.Close()
		return nil, err
	}
	if l.opts.Fsync == FsyncInterval {
		l.wg.Add(1)
		go l.syncLoop()
	}
	if l.opts.SnapshotEvery > 0 && l.hooks.Dump != nil {
		l.wg.Add(1)
		go l.snapshotLoop()
	}
	return l, nil
}

// Incarnation returns this process lifetime's incarnation number (strictly
// greater than any previous lifetime's in the same directory).
func (l *Log) Incarnation() uint64 { return l.incarnation }

// Stats copies the log's counters.
func (l *Log) Stats() Stats { return l.counters.Snapshot() }

func (l *Log) bumpIncarnation() error {
	path := filepath.Join(l.opts.Dir, incarnationFile)
	var cur uint64
	if b, err := os.ReadFile(path); err == nil {
		if v, perr := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64); perr == nil {
			cur = v
		}
	}
	next := cur + 1
	tmp := path + ".tmp"
	if err := l.writeFile(tmp, []byte(strconv.FormatUint(next, 10)+"\n")); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if err := l.syncDir(); err != nil {
		return err
	}
	l.incarnation = next
	l.counters.Incarnation.Store(next)
	return nil
}

func (l *Log) writeFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := l.fsync(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (l *Log) listIndexed(prefix, suffix string) ([]uint64, error) {
	entries, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range entries {
		if i, ok := parseIndexedName(e.Name(), prefix, suffix); ok {
			out = append(out, i)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// recover restores state from disk: newest intact snapshot, then replay of
// every segment at or above its watermark, stopping cleanly at the first torn
// or corrupt record (which is trimmed so the next recovery sees a clean log).
// It finishes by opening a fresh active segment above every recovered index —
// recovered files are never appended to.
func (l *Log) recover() error {
	snaps, err := l.listIndexed("snap-", ".snap")
	if err != nil {
		return err
	}
	var watermark uint64
	maxLSN := int64(0)
	rec := &Record{}
	for i := len(snaps) - 1; i >= 0; i-- {
		path := filepath.Join(l.opts.Dir, snapshotName(snaps[i]))
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		wm, err := parseFileHeader(data, snapMagic, l.opts.Epoch)
		if errors.Is(err, ErrEpochMismatch) {
			return err
		}
		if err != nil {
			os.Remove(path)
			continue
		}
		// Pass 1: every record must be intact and decodable before anything
		// is applied — a snapshot restores all-or-nothing.
		body := data[fileHeaderLen:]
		consumed, err := scanFrames(body, func(p []byte) error { return decodeRecord(rec, p) })
		if err != nil || consumed != len(body) {
			os.Remove(path)
			continue
		}
		// Pass 2: apply.
		if _, err := scanFrames(body, func(p []byte) error {
			if err := decodeRecord(rec, p); err != nil {
				return err
			}
			if rec.LSN > maxLSN {
				maxLSN = rec.LSN
			}
			l.counters.RecordsRecovered.Add(1)
			if l.hooks.Apply != nil {
				return l.hooks.Apply(rec)
			}
			return nil
		}); err != nil {
			return fmt.Errorf("durable: applying snapshot %s: %w", snapshotName(snaps[i]), err)
		}
		watermark = wm
		for j := 0; j < i; j++ {
			os.Remove(filepath.Join(l.opts.Dir, snapshotName(snaps[j])))
		}
		break
	}

	segs, err := l.listIndexed("wal-", ".seg")
	if err != nil {
		return err
	}
	maxIndex := watermark
	torn := false
	for i, idx := range segs {
		path := filepath.Join(l.opts.Dir, segmentName(idx))
		if idx > maxIndex {
			maxIndex = idx
		}
		if idx < watermark || torn {
			// Dead (covered by the snapshot) or unreachable past a torn
			// point: a recovered log must be clean end to end.
			os.Remove(path)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if _, err := parseFileHeader(data, segMagic, l.opts.Epoch); err != nil {
			if errors.Is(err, ErrEpochMismatch) {
				return err
			}
			// Torn header (a crash during segment creation): the whole file
			// and everything after it is unreachable.
			os.Remove(path)
			l.counters.TornTailTrims.Add(1)
			torn = true
			continue
		}
		body := data[fileHeaderLen:]
		consumed, err := scanFrames(body, func(p []byte) error {
			if derr := decodeRecord(rec, p); derr != nil {
				return errTorn
			}
			if rec.LSN > maxLSN {
				maxLSN = rec.LSN
			}
			l.counters.RecordsRecovered.Add(1)
			if l.hooks.Apply != nil {
				return l.hooks.Apply(rec)
			}
			return nil
		})
		l.counters.SegmentsReplayed.Add(1)
		if err != nil {
			if !errors.Is(err, errTorn) {
				return fmt.Errorf("durable: replaying %s: %w", segmentName(idx), err)
			}
			if terr := os.Truncate(path, int64(fileHeaderLen+consumed)); terr != nil {
				return terr
			}
			l.counters.TornTailTrims.Add(1)
			torn = true
		}
		_ = i
	}
	l.lsn = maxLSN
	if err := l.syncDir(); err != nil {
		return err
	}
	return l.openSegmentLocked(maxIndex + 1)
}

// openSegmentLocked creates segment idx as the active segment and fsyncs its
// header, so the segment's existence and framing boundary are durable before
// any record lands in it (this keeps the crash-truncation point — the synced
// offset — deterministic).
func (l *Log) openSegmentLocked(idx uint64) error {
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, segmentName(idx)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr := appendFileHeader(l.frameBuf[:0], segMagic, l.opts.Epoch, idx)
	l.frameBuf = hdr[:0]
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := l.fsync(f); err != nil {
		f.Close()
		return err
	}
	if err := l.syncDir(); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segIndex = idx
	l.written = fileHeaderLen
	l.synced = fileHeaderLen
	return nil
}

func (l *Log) setErrLocked(err error) {
	if l.firstErr == nil {
		l.firstErr = err
	}
	l.counters.AppendErrors.Add(1)
}

// Append assigns the record the next LSN and writes it to the active segment,
// fsyncing first under FsyncAlways (durability before the caller's ack). It
// is safe for concurrent use; the assigned LSN order is the file order. The
// record is fully consumed before return. On an I/O error the LSN is still
// assigned and returned — the error is sticky (surfaced by Close and the
// AppendErrors counter) because the server hot path cannot propagate it.
func (l *Log) Append(r *Record) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lsn++
	lsn := l.lsn
	if l.closed || l.f == nil {
		l.setErrLocked(ErrClosed)
		return lsn, ErrClosed
	}
	r.LSN = lsn
	l.payloadBuf = appendRecord(l.payloadBuf[:0], r)
	l.frameBuf = appendFrame(l.frameBuf[:0], l.payloadBuf)
	n, err := l.f.Write(l.frameBuf)
	l.written += int64(n)
	if err != nil {
		l.setErrLocked(err)
		return lsn, err
	}
	l.counters.Appends.Add(1)
	if l.opts.Fsync == FsyncAlways {
		if err := l.f.Sync(); err != nil {
			l.setErrLocked(err)
			return lsn, err
		}
		l.synced = l.written
		l.counters.Fsyncs.Add(1)
	}
	if l.written >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.setErrLocked(err)
			return lsn, err
		}
	}
	if l.opts.SnapshotEvery > 0 && l.hooks.Dump != nil {
		l.sinceSnap++
		if l.sinceSnap >= l.opts.SnapshotEvery {
			l.sinceSnap = 0
			select {
			case l.snapCh <- struct{}{}:
			default:
			}
		}
	}
	return lsn, nil
}

// rotateLocked seals the active segment (fsync + close — sealed segments are
// always durable regardless of policy) and opens the next one.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if err := l.fsync(l.f); err != nil {
			l.f.Close()
			l.f = nil
			return err
		}
		if err := l.f.Close(); err != nil {
			l.f = nil
			return err
		}
		l.f = nil
	}
	return l.openSegmentLocked(l.segIndex + 1)
}

// Sync forces unwritten appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed || l.f == nil {
		return l.firstErr
	}
	if l.synced == l.written {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.setErrLocked(err)
		return err
	}
	l.synced = l.written
	l.counters.Fsyncs.Add(1)
	return nil
}

func (l *Log) syncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stopCh:
			return
		case <-t.C:
			l.Sync()
		}
	}
}

func (l *Log) snapshotLoop() {
	defer l.wg.Done()
	for {
		select {
		case <-l.stopCh:
			return
		case <-l.snapCh:
			if err := l.Snapshot(); err != nil && !errors.Is(err, ErrClosed) {
				l.mu.Lock()
				l.setErrLocked(err)
				l.mu.Unlock()
			}
		}
	}
}

// Snapshot rotates to a fresh segment (the watermark), dumps the server's
// complete state via Hooks.Dump into a new snapshot file, then deletes the
// segments the snapshot made dead. Dump runs WITHOUT the log lock, so
// concurrent appends proceed; the per-record LSNs make the overlap idempotent
// on replay (a dumped state's lsn tells recovery which deltas in the live
// segment it already covers).
func (l *Log) Snapshot() error {
	if l.hooks.Dump == nil {
		return nil
	}
	l.snapMu.Lock()
	defer l.snapMu.Unlock()

	l.mu.Lock()
	if l.closed || l.f == nil {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.rotateLocked(); err != nil {
		l.setErrLocked(err)
		l.mu.Unlock()
		return err
	}
	watermark := l.segIndex
	l.mu.Unlock()

	tmp := filepath.Join(l.opts.Dir, "snap.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err := bw.Write(appendFileHeader(nil, snapMagic, l.opts.Epoch, watermark)); err != nil {
		f.Close()
		return err
	}
	var payload, frame []byte
	records := int64(0)
	err = l.hooks.Dump(func(r *Record) error {
		payload = appendRecord(payload[:0], r)
		frame = appendFrame(frame[:0], payload)
		records++
		_, werr := bw.Write(frame)
		return werr
	})
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = l.fsync(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(l.opts.Dir, snapshotName(watermark))); err != nil {
		return err
	}
	if err := l.syncDir(); err != nil {
		return err
	}
	l.counters.Snapshots.Add(1)
	l.counters.SnapshotRecords.Add(records)

	// Reclaim: segments below the watermark and snapshots below this one are
	// fully covered by the file just written.
	if segs, err := l.listIndexed("wal-", ".seg"); err == nil {
		for _, idx := range segs {
			if idx < watermark {
				os.Remove(filepath.Join(l.opts.Dir, segmentName(idx)))
			}
		}
	}
	if snaps, err := l.listIndexed("snap-", ".snap"); err == nil {
		for _, idx := range snaps {
			if idx < watermark {
				os.Remove(filepath.Join(l.opts.Dir, snapshotName(idx)))
			}
		}
	}
	return nil
}

// Close stops the background goroutines and releases the log. A graceful
// close flushes everything and writes a final snapshot (so the next Open
// replays almost nothing); with Options.SimulateCrash the active segment is
// instead truncated back to its last-fsynced offset, modeling exactly what a
// machine crash would have preserved under the configured fsync policy.
// Returns the first error the log encountered in its lifetime.
func (l *Log) Close() error {
	if !l.stopping.CompareAndSwap(false, true) {
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.firstErr
	}

	close(l.stopCh)
	l.wg.Wait()

	if !l.opts.SimulateCrash {
		l.Sync()
		if err := l.Snapshot(); err != nil && !errors.Is(err, ErrClosed) {
			l.mu.Lock()
			l.setErrLocked(err)
			l.mu.Unlock()
		}
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	if l.f != nil {
		if l.opts.SimulateCrash {
			// What the disk would hold after a power cut: only bytes the
			// policy had already forced down.
			l.f.Truncate(l.synced)
		} else {
			if err := l.fsync(l.f); err != nil {
				l.setErrLocked(err)
			}
		}
		if err := l.f.Close(); err != nil && !l.opts.SimulateCrash {
			l.setErrLocked(err)
		}
		l.f = nil
	}
	l.dirf.Close()
	return l.firstErr
}
