package durable

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"fastread/internal/types"
)

// fuzzSeedSegment builds a realistic segment: valid header, n framed deltas.
func fuzzSeedSegment(n int) []byte {
	data := appendFileHeader(nil, segMagic, 0, 1)
	for i := 0; i < n; i++ {
		r := Record{
			Kind: KindDelta, LSN: int64(i + 1), Key: "key", TS: int64(i + 1),
			Cur: []byte("value"), From: types.Writer(), RCounter: int64(i + 1),
		}
		data = appendFrame(data, appendRecord(nil, &r))
	}
	return data
}

// FuzzWALReplay throws arbitrary bytes at segment recovery. Invariants: Open
// never panics and never fails (except for a genuine epoch mismatch, which a
// valid header with a nonzero epoch encodes); it stops cleanly at the first
// bad record; and the directory it leaves behind is clean — a second recovery
// sees the identical record prefix with zero torn-tail trims.
func FuzzWALReplay(f *testing.F) {
	full := fuzzSeedSegment(4)
	f.Add(full)
	f.Add(full[:len(full)-3])     // torn tail
	f.Add(full[:fileHeaderLen])   // header only
	f.Add(full[:fileHeaderLen/2]) // torn header
	f.Add([]byte{})               // empty file
	f.Add(fuzzSeedSegment(0))     // valid empty segment
	corrupt := fuzzSeedSegment(4)
	corrupt[len(corrupt)/2] ^= 0xff // mid-file bit flip
	f.Add(corrupt)
	badlen := fuzzSeedSegment(1)
	badlen[fileHeaderLen] = 0xff // huge declared frame length
	f.Add(badlen)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		count := 0
		l, err := Open(
			Options{Dir: dir, Fsync: FsyncNever, SnapshotEvery: -1},
			Hooks{Apply: func(r *Record) error { count++; return nil }},
		)
		if err != nil {
			if errors.Is(err, ErrEpochMismatch) {
				return
			}
			t.Fatalf("Open: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		count2 := 0
		l2, err := Open(
			Options{Dir: dir, Fsync: FsyncNever, SnapshotEvery: -1},
			Hooks{Apply: func(r *Record) error { count2++; return nil }},
		)
		if err != nil {
			t.Fatalf("re-Open of trimmed dir: %v", err)
		}
		if count2 != count {
			t.Fatalf("re-recovery applied %d records, first recovery %d", count2, count)
		}
		if trims := l2.Stats().TornTailTrims; trims != 0 {
			t.Fatalf("trimmed dir still torn: %d trims on re-open", trims)
		}
		l2.Close()
	})
}
