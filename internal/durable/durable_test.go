package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"fastread/internal/types"
)

// testState is a minimal register map with the same replay discipline the
// real servers use: a delta applies only if its LSN exceeds the key's
// last-applied LSN, adoption is by timestamp, retained bytes are cloned.
type testState struct {
	mu   sync.Mutex
	vals map[string]string
	ts   map[string]int64
	lsns map[string]int64
}

func newTestState() *testState {
	return &testState{vals: map[string]string{}, ts: map[string]int64{}, lsns: map[string]int64{}}
}

func (s *testState) apply(r *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch r.Kind {
	case KindState:
		s.vals[r.Key] = string(r.Cur)
		s.ts[r.Key] = r.TS
		s.lsns[r.Key] = r.LSN
	case KindDelta:
		if r.LSN <= s.lsns[r.Key] {
			return nil
		}
		if r.TS > s.ts[r.Key] {
			s.vals[r.Key] = string(r.Cur)
			s.ts[r.Key] = r.TS
		}
		s.lsns[r.Key] = r.LSN
	}
	return nil
}

func (s *testState) dump(emit func(*Record) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.vals {
		if err := emit(&Record{Kind: KindState, LSN: s.lsns[k], Key: k, TS: s.ts[k], Cur: []byte(v)}); err != nil {
			return err
		}
	}
	return nil
}

func (s *testState) hooks() Hooks {
	return Hooks{Apply: s.apply, Dump: s.dump}
}

func (s *testState) get(k string) (string, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vals[k], s.ts[k]
}

func (s *testState) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vals)
}

func mustOpen(t *testing.T, opts Options, hooks Hooks) *Log {
	t.Helper()
	l, err := Open(opts, hooks)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func writeDelta(t *testing.T, l *Log, st *testState, key, val string, ts int64) {
	t.Helper()
	r := &Record{
		Kind: KindDelta, Key: key, TS: ts, Cur: []byte(val),
		From: types.Writer(), RCounter: ts,
	}
	lsn, err := l.Append(r)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	r.LSN = lsn
	if err := st.apply(r); err != nil {
		t.Fatalf("apply: %v", err)
	}
}

func TestRoundTripGraceful(t *testing.T) {
	dir := t.TempDir()
	st := newTestState()
	l := mustOpen(t, Options{Dir: dir, Fsync: FsyncNever, SnapshotEvery: -1}, st.hooks())
	for i := 0; i < 100; i++ {
		writeDelta(t, l, st, fmt.Sprintf("k%d", i%10), fmt.Sprintf("v%d", i), int64(i+1))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2 := newTestState()
	l2 := mustOpen(t, Options{Dir: dir, Fsync: FsyncNever, SnapshotEvery: -1}, st2.hooks())
	defer l2.Close()
	if st2.len() != 10 {
		t.Fatalf("recovered %d keys, want 10", st2.len())
	}
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		want, wantTS := st.get(k)
		got, gotTS := st2.get(k)
		if got != want || gotTS != wantTS {
			t.Errorf("key %s: got (%q,%d), want (%q,%d)", k, got, gotTS, want, wantTS)
		}
	}
	// The graceful close wrote a final snapshot, so recovery should have come
	// from KindState records, not a 100-delta replay.
	if s := l2.Stats(); s.RecordsRecovered != 10 {
		t.Errorf("RecordsRecovered = %d, want 10 (snapshot states)", s.RecordsRecovered)
	}
}

func TestIncarnationMonotonic(t *testing.T) {
	dir := t.TempDir()
	for want := uint64(1); want <= 3; want++ {
		l := mustOpen(t, Options{Dir: dir, Fsync: FsyncNever, SnapshotEvery: -1}, Hooks{})
		if got := l.Incarnation(); got != want {
			t.Fatalf("incarnation = %d, want %d", got, want)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}

func TestRotationAndMultiSegmentReplay(t *testing.T) {
	dir := t.TempDir()
	st := newTestState()
	l := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: -1, SegmentBytes: 256}, st.hooks())
	for i := 0; i < 50; i++ {
		writeDelta(t, l, st, fmt.Sprintf("k%d", i%5), fmt.Sprintf("value-%d", i), int64(i+1))
	}
	// SimulateCrash close: no final snapshot, so recovery must replay the
	// rotated segments themselves.
	l.opts.SimulateCrash = true
	l.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("expected rotation to leave >=3 segments, got %d", len(segs))
	}

	st2 := newTestState()
	l2 := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: -1}, st2.hooks())
	defer l2.Close()
	s := l2.Stats()
	if s.RecordsRecovered != 50 {
		t.Fatalf("RecordsRecovered = %d, want 50", s.RecordsRecovered)
	}
	if s.SegmentsReplayed < 3 {
		t.Errorf("SegmentsReplayed = %d, want >=3", s.SegmentsReplayed)
	}
	if s.TornTailTrims != 0 {
		t.Errorf("TornTailTrims = %d, want 0", s.TornTailTrims)
	}
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("k%d", i)
		want, _ := st.get(k)
		if got, _ := st2.get(k); got != want {
			t.Errorf("key %s: got %q, want %q", k, got, want)
		}
	}
}

func TestSnapshotTruncatesSegmentsAndTailReplays(t *testing.T) {
	dir := t.TempDir()
	st := newTestState()
	l := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: -1}, st.hooks())
	for i := 0; i < 5; i++ {
		writeDelta(t, l, st, fmt.Sprintf("a%d", i), "pre", int64(i+1))
	}
	if err := l.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	for i := 0; i < 3; i++ {
		writeDelta(t, l, st, fmt.Sprintf("b%d", i), "post", int64(i+100))
	}
	// Old segment must be gone: the snapshot covers it.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("after snapshot want 1 live segment, got %v", segs)
	}
	l.opts.SimulateCrash = true
	l.Close()

	st2 := newTestState()
	l2 := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: -1}, st2.hooks())
	defer l2.Close()
	if st2.len() != 8 {
		t.Fatalf("recovered %d keys, want 8", st2.len())
	}
	s := l2.Stats()
	// 5 snapshot states + 3 tail deltas.
	if s.RecordsRecovered != 8 {
		t.Errorf("RecordsRecovered = %d, want 8", s.RecordsRecovered)
	}
}

// TestLSNReplayIdempotence hand-builds the snapshot-overlaps-append layout:
// the snapshot's state already reflects deltas that are still present in a
// live segment. Replay must skip them — in particular it must NOT let an
// older-timestamp delta clobber per-key bookkeeping that the state record
// already advanced past.
func TestLSNReplayIdempotence(t *testing.T) {
	dir := t.TempDir()

	// Snapshot at watermark 2: key "k" = "new" at ts 5, last-applied LSN 2.
	snap := appendFileHeader(nil, snapMagic, 0, 2)
	payload := appendRecord(nil, &Record{Kind: KindState, LSN: 2, Key: "k", TS: 5, Cur: []byte("new")})
	snap = appendFrame(snap, payload)
	if err := os.WriteFile(filepath.Join(dir, snapshotName(2)), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	// Segment 2 (the watermark segment) still holds LSN 1 and 2 — the dump
	// raced the appends — plus a genuinely-new LSN 3.
	seg := appendFileHeader(nil, segMagic, 0, 2)
	for _, r := range []Record{
		{Kind: KindDelta, LSN: 1, Key: "k", TS: 3, Cur: []byte("old")},
		{Kind: KindDelta, LSN: 2, Key: "k", TS: 5, Cur: []byte("new")},
		{Kind: KindDelta, LSN: 3, Key: "k", TS: 7, Cur: []byte("newest")},
	} {
		seg = appendFrame(seg, appendRecord(nil, &r))
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(2)), seg, 0o644); err != nil {
		t.Fatal(err)
	}

	st := newTestState()
	applied := 0
	hooks := Hooks{
		Apply: func(r *Record) error { applied++; return st.apply(r) },
		Dump:  st.dump,
	}
	l := mustOpen(t, Options{Dir: dir, Fsync: FsyncNever, SnapshotEvery: -1}, hooks)
	defer l.Close()
	if v, ts := st.get("k"); v != "newest" || ts != 7 {
		t.Fatalf("got (%q,%d), want (newest,7)", v, ts)
	}
	if lsn := st.lsns["k"]; lsn != 3 {
		t.Errorf("last-applied LSN = %d, want 3", lsn)
	}
	// New appends must continue above every replayed LSN.
	if lsn, err := l.Append(&Record{Kind: KindDelta, Key: "k", TS: 9, Cur: []byte("x")}); err != nil || lsn != 4 {
		t.Errorf("next LSN = %d (err %v), want 4", lsn, err)
	}
}

func TestEpochMismatchRefusesRecovery(t *testing.T) {
	dir := t.TempDir()
	st := newTestState()
	l := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: -1, Epoch: 1}, st.hooks())
	writeDelta(t, l, st, "k", "v", 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := Open(Options{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: -1, Epoch: 2}, newTestState().hooks())
	if !errors.Is(err, ErrEpochMismatch) {
		t.Fatalf("Open with wrong epoch: err = %v, want ErrEpochMismatch", err)
	}
	// Same epoch still recovers.
	l2 := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: -1, Epoch: 1}, newTestState().hooks())
	l2.Close()
}

func TestSimulateCrashFsyncNeverLosesUnsynced(t *testing.T) {
	dir := t.TempDir()
	st := newTestState()
	l := mustOpen(t, Options{Dir: dir, Fsync: FsyncNever, SnapshotEvery: -1}, st.hooks())
	for i := 0; i < 5; i++ {
		writeDelta(t, l, st, "k", fmt.Sprintf("v%d", i), int64(i+1))
	}
	l.opts.SimulateCrash = true
	l.Close()

	st2 := newTestState()
	l2 := mustOpen(t, Options{Dir: dir, Fsync: FsyncNever, SnapshotEvery: -1}, st2.hooks())
	defer l2.Close()
	if st2.len() != 0 {
		t.Fatalf("fsync=never crash: recovered %d keys, want 0 (amnesia)", st2.len())
	}
	if s := l2.Stats(); s.TornTailTrims != 0 {
		t.Errorf("TornTailTrims = %d, want 0 (truncation is clean)", s.TornTailTrims)
	}
	if l2.Incarnation() != 2 {
		t.Errorf("incarnation = %d, want 2", l2.Incarnation())
	}
}

func TestExplicitSyncSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	st := newTestState()
	l := mustOpen(t, Options{Dir: dir, Fsync: FsyncNever, SnapshotEvery: -1}, st.hooks())
	writeDelta(t, l, st, "k", "synced", 1)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	writeDelta(t, l, st, "k", "unsynced", 2)
	l.opts.SimulateCrash = true
	l.Close()

	st2 := newTestState()
	l2 := mustOpen(t, Options{Dir: dir, Fsync: FsyncNever, SnapshotEvery: -1}, st2.hooks())
	defer l2.Close()
	if v, _ := st2.get("k"); v != "synced" {
		t.Fatalf("got %q, want %q", v, "synced")
	}
}

// TestTruncateAtEveryOffset is the crash-point sweep: write N records with
// fsync always, then for EVERY byte offset in the resulting segment, recover
// from a copy truncated at that offset. Recovery must never fail and must
// restore exactly the records whose frames survived intact — a consistent
// prefix — trimming the torn remainder.
func TestTruncateAtEveryOffset(t *testing.T) {
	srcDir := t.TempDir()
	st := newTestState()
	l := mustOpen(t, Options{Dir: srcDir, Fsync: FsyncAlways, SnapshotEvery: -1}, st.hooks())
	const n = 8
	for i := 0; i < n; i++ {
		writeDelta(t, l, st, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i), int64(i+1))
	}
	l.opts.SimulateCrash = true // no final snapshot: keep the raw segment
	l.Close()

	data, err := os.ReadFile(filepath.Join(srcDir, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Recompute the frame boundaries so each offset maps to its survivor
	// count. boundaries[i] = end of the i-th frame.
	boundaries := []int{fileHeaderLen}
	off := fileHeaderLen
	for off < len(data) {
		flen := int(uint32(data[off])<<24 | uint32(data[off+1])<<16 | uint32(data[off+2])<<8 | uint32(data[off+3]))
		off += frameHeaderLen + flen
		boundaries = append(boundaries, off)
	}
	if len(boundaries) != n+1 || off != len(data) {
		t.Fatalf("frame walk mismatch: %d boundaries, end %d, file %d", len(boundaries), off, len(data))
	}

	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		survivors := 0
		for i := 1; i <= n; i++ {
			if boundaries[i] <= cut {
				survivors = i
			}
		}
		if cut < fileHeaderLen {
			survivors = 0
		}
		st2 := newTestState()
		l2, err := Open(Options{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: -1}, st2.hooks())
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		if got := st2.len(); got != survivors {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, got, survivors)
		}
		for i := 0; i < survivors; i++ {
			if v, _ := st2.get(fmt.Sprintf("k%d", i)); v != fmt.Sprintf("v%d", i) {
				t.Fatalf("cut=%d: key k%d = %q", cut, i, v)
			}
		}
		s := l2.Stats()
		wantTrims := int64(0)
		if cut < len(data) && (cut < fileHeaderLen || cut != boundaries[survivors]) {
			wantTrims = 1
		}
		if s.TornTailTrims != wantTrims {
			t.Fatalf("cut=%d: TornTailTrims = %d, want %d", cut, s.TornTailTrims, wantTrims)
		}
		// The trimmed directory must now be clean: a second recovery sees the
		// same prefix with zero trims.
		l2.Close()
		st3 := newTestState()
		l3, err := Open(Options{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: -1}, st3.hooks())
		if err != nil {
			t.Fatalf("cut=%d: re-Open: %v", cut, err)
		}
		if st3.len() != survivors || l3.Stats().TornTailTrims != 0 {
			t.Fatalf("cut=%d: re-recovery diverged (%d keys, %d trims)", cut, st3.len(), l3.Stats().TornTailTrims)
		}
		l3.Close()
	}
}

func TestCorruptMidSegmentStopsCleanly(t *testing.T) {
	dir := t.TempDir()
	st := newTestState()
	l := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: -1}, st.hooks())
	for i := 0; i < 4; i++ {
		writeDelta(t, l, st, fmt.Sprintf("k%d", i), "v", int64(i+1))
	}
	l.opts.SimulateCrash = true
	l.Close()

	path := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte somewhere in the middle of the file: everything
	// from that frame on is unreachable.
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := newTestState()
	l2 := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: -1}, st2.hooks())
	defer l2.Close()
	if st2.len() >= 4 {
		t.Fatalf("corruption not detected: %d keys recovered", st2.len())
	}
	if s := l2.Stats(); s.TornTailTrims != 1 {
		t.Errorf("TornTailTrims = %d, want 1", s.TornTailTrims)
	}
	// Survivors must be the strict prefix.
	for i := 0; i < st2.len(); i++ {
		if v, _ := st2.get(fmt.Sprintf("k%d", i)); v != "v" {
			t.Errorf("non-prefix recovery at k%d", i)
		}
	}
}

func TestCorruptSnapshotFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	st := newTestState()
	l := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: -1}, st.hooks())
	writeDelta(t, l, st, "k", "first", 1)
	if err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	writeDelta(t, l, st, "k", "second", 2)
	if err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	l.opts.SimulateCrash = true
	l.Close()

	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("want exactly the newest snapshot on disk, got %v", snaps)
	}
	// Corrupt the newest snapshot's body; recovery must discard it. With no
	// older snapshot the segments below its watermark are already deleted, so
	// state regresses to whatever the surviving segments hold — here the
	// post-snapshot (empty) tail. The point under test: a bad snapshot never
	// aborts recovery and never half-applies.
	data, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(snaps[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := newTestState()
	l2 := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: -1}, st2.hooks())
	defer l2.Close()
	if _, err := os.Stat(snaps[0]); !os.IsNotExist(err) {
		t.Errorf("corrupt snapshot not removed")
	}
	if st2.len() != 0 {
		t.Errorf("half-applied snapshot: %d keys", st2.len())
	}
}

func TestRecordRoundTrip(t *testing.T) {
	in := Record{
		Kind: KindState, LSN: 42, Key: "the-key", TS: 7, Rank: 3,
		Cur: []byte("cur"), Prev: []byte{}, Sig: nil,
		From: types.Reader(2), RCounter: 99,
		Seen:     []types.ProcessID{types.Writer(), types.Reader(1)},
		Counters: []CounterEntry{{PID: 1, N: 5}, {PID: -3, N: 17}},
	}
	payload := appendRecord(nil, &in)
	var out Record
	if err := decodeRecord(&out, payload); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Kind != in.Kind || out.LSN != in.LSN || out.Key != in.Key || out.TS != in.TS ||
		out.Rank != in.Rank || out.From != in.From || out.RCounter != in.RCounter {
		t.Fatalf("scalar mismatch: %+v vs %+v", out, in)
	}
	if !bytes.Equal(out.Cur, in.Cur) || out.Prev == nil || len(out.Prev) != 0 || out.Sig != nil {
		t.Fatalf("value mismatch: Cur=%q Prev=%v Sig=%v", out.Cur, out.Prev, out.Sig)
	}
	if len(out.Seen) != 2 || out.Seen[0] != in.Seen[0] || out.Seen[1] != in.Seen[1] {
		t.Fatalf("seen mismatch: %v", out.Seen)
	}
	if len(out.Counters) != 2 || out.Counters[0] != in.Counters[0] || out.Counters[1] != in.Counters[1] {
		t.Fatalf("counters mismatch: %v", out.Counters)
	}
	// Trailing garbage must be rejected.
	if err := decodeRecord(&out, append(payload, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}
