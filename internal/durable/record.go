package durable

import (
	"encoding/binary"
	"fmt"

	"fastread/internal/types"
)

// Record kinds. The durable layer frames and checksums records without
// interpreting them; the kind tells the owning protocol server how to replay
// one during recovery.
const (
	// KindDelta is one state mutation exactly as the server applied it: the
	// request's timestamped value plus the client identity and operation
	// counter that carried it. Segments hold deltas.
	KindDelta byte = 1
	// KindState is one register's complete durable state. Snapshots hold one
	// state record per instantiated register.
	KindState byte = 2
)

// CounterEntry is one client's operation counter inside a KindState record
// (the fast protocols' per-client stale-request guard).
type CounterEntry struct {
	// PID is the client's process id as types.ProcessID.ClientPID encodes it.
	PID int32
	// N is the highest operation counter the server has processed for it.
	N int64
}

// Record is the shared mutation/state vocabulary every protocol server logs
// and replays. The durable layer assigns LSN and owns framing and checksums;
// which fields are meaningful is the protocol's business (abd uses Rank, the
// fast register uses From/RCounter/Seen/Counters, the value-only protocols
// use just Key/TS/Cur/Prev).
//
// Ownership: a Record handed to Hooks.Apply is valid only for the duration of
// the call, and its byte fields alias the replay buffer — clone anything the
// state retains, exactly as the live receive path clones at its retention
// point. A Record passed to Log.Append or emitted by Hooks.Dump is consumed
// (encoded) before the call returns, so callers may alias live state.
type Record struct {
	Kind byte
	// LSN is the record's log sequence number: assigned by Log.Append in file
	// order, echoed back on replay. A KindState record carries the LSN of the
	// last delta its register reflects, so replaying a delta with
	// LSN ≤ state.lsn is a no-op — that is what makes the snapshot-while-
	// appending overlap idempotent.
	LSN  int64
	Key  string
	TS   int64
	Rank int32
	Cur  []byte
	Prev []byte
	Sig  []byte
	// From and RCounter identify the client request that caused a delta.
	From     types.ProcessID
	RCounter int64
	// Seen and Counters carry the fast register's seen set and per-client
	// counters in KindState records.
	Seen     []types.ProcessID
	Counters []CounterEntry
}

// Value-field length sentinel: 0 encodes nil (the protocols distinguish the
// initial value ⊥ from an empty byte string), n+1 encodes n bytes.
func appendValue(dst []byte, v []byte) []byte {
	if v == nil {
		return binary.BigEndian.AppendUint32(dst, 0)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(v))+1)
	return append(dst, v...)
}

func appendPID(dst []byte, p types.ProcessID) []byte {
	dst = append(dst, byte(p.Role))
	return binary.BigEndian.AppendUint32(dst, uint32(p.Index))
}

// appendRecord encodes r onto dst and returns the extended slice.
func appendRecord(dst []byte, r *Record) []byte {
	dst = append(dst, r.Kind)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.LSN))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Key)))
	dst = append(dst, r.Key...)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.TS))
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Rank))
	dst = appendValue(dst, r.Cur)
	dst = appendValue(dst, r.Prev)
	dst = appendValue(dst, r.Sig)
	dst = appendPID(dst, r.From)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.RCounter))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Seen)))
	for _, p := range r.Seen {
		dst = appendPID(dst, p)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Counters)))
	for _, c := range r.Counters {
		dst = binary.BigEndian.AppendUint32(dst, uint32(c.PID))
		dst = binary.BigEndian.AppendUint64(dst, uint64(c.N))
	}
	return dst
}

// recordDecoder is a bounds-checked cursor over one record payload.
type recordDecoder struct {
	b []byte
}

func (d *recordDecoder) take(n int) ([]byte, bool) {
	if len(d.b) < n {
		return nil, false
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out, true
}

func (d *recordDecoder) u8() (byte, bool) {
	b, ok := d.take(1)
	if !ok {
		return 0, false
	}
	return b[0], true
}

func (d *recordDecoder) u16() (uint16, bool) {
	b, ok := d.take(2)
	if !ok {
		return 0, false
	}
	return binary.BigEndian.Uint16(b), true
}

func (d *recordDecoder) u32() (uint32, bool) {
	b, ok := d.take(4)
	if !ok {
		return 0, false
	}
	return binary.BigEndian.Uint32(b), true
}

func (d *recordDecoder) u64() (uint64, bool) {
	b, ok := d.take(8)
	if !ok {
		return 0, false
	}
	return binary.BigEndian.Uint64(b), true
}

func (d *recordDecoder) value() ([]byte, bool) {
	n, ok := d.u32()
	if !ok {
		return nil, false
	}
	if n == 0 {
		return nil, true
	}
	return d.take(int(n) - 1)
}

func (d *recordDecoder) pid() (types.ProcessID, bool) {
	role, ok := d.u8()
	if !ok {
		return types.ProcessID{}, false
	}
	idx, ok := d.u32()
	if !ok {
		return types.ProcessID{}, false
	}
	p := types.ProcessID{Role: types.Role(role), Index: int(int32(idx))}
	if p == (types.ProcessID{}) {
		// The zero ProcessID is legal in records that carry no client
		// identity (KindState).
		return p, true
	}
	return p, p.Valid()
}

var errBadRecord = fmt.Errorf("durable: malformed record")

// decodeRecord decodes one payload into rec, reusing rec's slices. The
// decoded byte fields ALIAS payload.
func decodeRecord(rec *Record, payload []byte) error {
	d := recordDecoder{b: payload}
	var ok bool
	if rec.Kind, ok = d.u8(); !ok || (rec.Kind != KindDelta && rec.Kind != KindState) {
		return errBadRecord
	}
	lsn, ok := d.u64()
	if !ok {
		return errBadRecord
	}
	rec.LSN = int64(lsn)
	keyLen, ok := d.u16()
	if !ok {
		return errBadRecord
	}
	key, ok := d.take(int(keyLen))
	if !ok {
		return errBadRecord
	}
	rec.Key = string(key)
	ts, ok := d.u64()
	if !ok {
		return errBadRecord
	}
	rec.TS = int64(ts)
	rank, ok := d.u32()
	if !ok {
		return errBadRecord
	}
	rec.Rank = int32(rank)
	if rec.Cur, ok = d.value(); !ok {
		return errBadRecord
	}
	if rec.Prev, ok = d.value(); !ok {
		return errBadRecord
	}
	if rec.Sig, ok = d.value(); !ok {
		return errBadRecord
	}
	if rec.From, ok = d.pid(); !ok {
		return errBadRecord
	}
	rc, ok := d.u64()
	if !ok {
		return errBadRecord
	}
	rec.RCounter = int64(rc)
	nSeen, ok := d.u16()
	if !ok {
		return errBadRecord
	}
	rec.Seen = rec.Seen[:0]
	for i := 0; i < int(nSeen); i++ {
		p, ok := d.pid()
		if !ok {
			return errBadRecord
		}
		rec.Seen = append(rec.Seen, p)
	}
	nCtr, ok := d.u16()
	if !ok {
		return errBadRecord
	}
	rec.Counters = rec.Counters[:0]
	for i := 0; i < int(nCtr); i++ {
		pid, ok := d.u32()
		if !ok {
			return errBadRecord
		}
		n, ok := d.u64()
		if !ok {
			return errBadRecord
		}
		rec.Counters = append(rec.Counters, CounterEntry{PID: int32(pid), N: int64(n)})
	}
	if len(d.b) != 0 {
		return errBadRecord
	}
	return nil
}
