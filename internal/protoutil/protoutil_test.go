package protoutil

import (
	"context"
	"errors"
	"testing"
	"time"

	"fastread/internal/trace"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// startAckServer joins the network as the given server and replies to every
// incoming message with an ack of the supplied op and timestamp.
func startAckServer(t *testing.T, net transport.Network, id types.ProcessID, op wire.Op, ts types.Timestamp) {
	t.Helper()
	node, err := net.Join(id)
	if err != nil {
		t.Fatalf("join %v: %v", id, err)
	}
	go transport.Serve(node, func(m transport.Message) {
		req, err := wire.Decode(m.Payload)
		if err != nil {
			return
		}
		ack := &wire.Message{Op: op, TS: ts, RCounter: req.RCounter}
		_ = node.Send(m.From, ack.Kind(), wire.MustEncode(ack))
	})
	t.Cleanup(func() { _ = node.Close() })
}

func TestRoundTripCollectsQuorum(t *testing.T) {
	net := transport.NewInMemNetwork()
	defer net.Close()

	servers := ServerIDs(4)
	for i, s := range servers {
		startAckServer(t, net, s, wire.OpReadAck, types.Timestamp(i+1))
	}
	client, err := net.Join(types.Reader(1))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req := &wire.Message{Op: wire.OpRead, RCounter: 1}
	acks, err := RoundTrip(ctx, client, servers, req, 3, nil, trace.New())
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	if len(acks) != 3 {
		t.Fatalf("got %d acks, want 3", len(acks))
	}
	seen := map[types.ProcessID]bool{}
	for _, a := range acks {
		if seen[a.From] {
			t.Errorf("duplicate ack from %v", a.From)
		}
		seen[a.From] = true
	}
}

func TestCollectAcksFiltersAndDeduplicates(t *testing.T) {
	net := transport.NewInMemNetwork()
	defer net.Close()
	client, err := net.Join(types.Reader(1))
	if err != nil {
		t.Fatal(err)
	}
	srvNode, err := net.Join(types.Server(1))
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := net.Join(types.Server(2))
	if err != nil {
		t.Fatal(err)
	}
	other, err := net.Join(types.Reader(2))
	if err != nil {
		t.Fatal(err)
	}

	send := func(node transport.Node, msg *wire.Message) {
		t.Helper()
		if err := node.Send(client.ID(), msg.Kind(), wire.MustEncode(msg)); err != nil {
			t.Fatal(err)
		}
	}
	// Noise: from a reader (ignored), malformed payload, stale rCounter
	// (rejected by the filter), duplicate from the same server.
	_ = other.Send(client.ID(), "readack", wire.MustEncode(&wire.Message{Op: wire.OpReadAck, RCounter: 5}))
	_ = srvNode.Send(client.ID(), "junk", []byte{0xFF, 0x01})
	send(srvNode, &wire.Message{Op: wire.OpReadAck, RCounter: 4})
	send(srvNode, &wire.Message{Op: wire.OpReadAck, RCounter: 5})
	send(srvNode, &wire.Message{Op: wire.OpReadAck, RCounter: 5, TS: 9})
	send(srv2, &wire.Message{Op: wire.OpReadAck, RCounter: 5, TS: 2})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	filter := func(_ types.ProcessID, m *wire.Message) bool { return m.RCounter == 5 }
	acks, err := CollectAcks(ctx, client, 2, filter, trace.New())
	if err != nil {
		t.Fatalf("CollectAcks: %v", err)
	}
	if len(acks) != 2 {
		t.Fatalf("got %d acks, want 2", len(acks))
	}
	if acks[0].From == acks[1].From {
		t.Error("duplicate server counted twice")
	}
	// The first accepted ack from s1 must be the first valid one (rCounter 5).
	for _, a := range acks {
		if a.From == types.Server(1) && a.Msg.TS != 0 {
			t.Errorf("expected first valid ack from s1 (TS=0), got TS=%d", a.Msg.TS)
		}
	}
}

func TestCollectAcksContextCancelled(t *testing.T) {
	net := transport.NewInMemNetwork()
	defer net.Close()
	client, err := net.Join(types.Reader(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = CollectAcks(ctx, client, 1, nil, nil)
	if !errors.Is(err, ErrInterrupted) {
		t.Errorf("err = %v, want ErrInterrupted", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want to wrap DeadlineExceeded", err)
	}
}

func TestCollectAcksInboxClosed(t *testing.T) {
	net := transport.NewInMemNetwork()
	defer net.Close()
	client, err := net.Join(types.Reader(1))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		_ = client.Close()
	}()
	_, err = CollectAcks(context.Background(), client, 1, nil, nil)
	if !errors.Is(err, ErrInboxClosed) {
		t.Errorf("err = %v, want ErrInboxClosed", err)
	}
}

func TestCollectAcksZeroNeed(t *testing.T) {
	net := transport.NewInMemNetwork()
	defer net.Close()
	client, err := net.Join(types.Reader(1))
	if err != nil {
		t.Fatal(err)
	}
	acks, err := CollectAcks(context.Background(), client, 0, nil, nil)
	if err != nil || len(acks) != 0 {
		t.Errorf("zero-need collect = %v, %v", acks, err)
	}
}

func TestBroadcastEncodeError(t *testing.T) {
	net := transport.NewInMemNetwork()
	defer net.Close()
	client, err := net.Join(types.Writer())
	if err != nil {
		t.Fatal(err)
	}
	bad := &wire.Message{Op: 0}
	if err := Broadcast(client, ServerIDs(2), bad, nil); err == nil {
		t.Error("Broadcast with invalid message succeeded")
	}
}

func TestServerAndReaderIDs(t *testing.T) {
	s := ServerIDs(3)
	if len(s) != 3 || s[0] != types.Server(1) || s[2] != types.Server(3) {
		t.Errorf("ServerIDs = %v", s)
	}
	r := ReaderIDs(2)
	if len(r) != 2 || r[0] != types.Reader(1) || r[1] != types.Reader(2) {
		t.Errorf("ReaderIDs = %v", r)
	}
	if len(ServerIDs(0)) != 0 {
		t.Error("ServerIDs(0) should be empty")
	}
}

func TestMaxTimestampAndFilter(t *testing.T) {
	acks := []Ack{
		{From: types.Server(1), Msg: &wire.Message{Op: wire.OpReadAck, TS: 3}},
		{From: types.Server(2), Msg: &wire.Message{Op: wire.OpReadAck, TS: 7}},
		{From: types.Server(3), Msg: &wire.Message{Op: wire.OpReadAck, TS: 7}},
		{From: types.Server(4), Msg: &wire.Message{Op: wire.OpReadAck, TS: 1}},
	}
	ts, best, ok := MaxTimestamp(acks)
	if !ok || ts != 7 || best.Msg.TS != 7 {
		t.Errorf("MaxTimestamp = %v %v %v", ts, best, ok)
	}
	if _, _, ok := MaxTimestamp(nil); ok {
		t.Error("MaxTimestamp on empty should report !ok")
	}
	filtered := FilterByTimestamp(acks, 7)
	if len(filtered) != 2 {
		t.Errorf("FilterByTimestamp returned %d acks, want 2", len(filtered))
	}
	if len(FilterByTimestamp(acks, 99)) != 0 {
		t.Error("FilterByTimestamp(99) should be empty")
	}
}
