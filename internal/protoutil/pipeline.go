// Pipelined operation engine.
//
// The blocking RoundTrip/CollectAcks helpers serve one operation at a time:
// the client broadcasts, then owns the inbox until its quorum assembles. The
// Pipeline generalises that to N concurrent in-flight operations per client
// handle: a single dispatcher goroutine drains the node's inbox and offers
// every acknowledgement to every pending operation's filter, so operations
// complete independently, in whatever order their quorums assemble. The
// protocols' existing per-operation nonces (read counters, write timestamps)
// are what keep concurrent operations' acknowledgements apart — the engine
// adds no wire state of its own, and a serial operation is exactly a
// pipeline of depth one.
package protoutil

import (
	"context"
	"sync"
	"time"

	"fastread/internal/trace"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// DefaultPipelineDepth is the per-handle in-flight bound used when a client
// is configured with a non-positive depth.
const DefaultPipelineDepth = 16

// MaxPipelineDepth caps the configured depth. The bound exists for
// correctness, not taste: servers bound their per-client bookkeeping by
// assuming a client's live operations span a limited nonce window (the
// maxmin reply frontier's maxReplyLag presumes gaps more than 1024 nonces
// behind the newest answered operation are abandoned), so a pipeline deeper
// than that window could see a slow live operation classified as abandoned
// and starved. 512 keeps a 2x margin below the tightest server-side lag.
const MaxPipelineDepth = 512

// Pipeline demultiplexes acknowledgements for up to `depth` concurrent
// in-flight operations over one client node. It is shared by every protocol
// client; one Pipeline owns one node's inbox.
//
// Lifecycle: the dispatcher goroutine starts with the pipeline (it must
// drain the inbox even before the first operation — see NewPipeline) and
// exits when the node's inbox closes (the node, its demux route, or the
// whole store shut down), failing every still-pending operation with
// ErrInboxClosed.
//
// Locking: p.mu orders registration, matching and completion. Completion
// callbacks are ALWAYS invoked outside p.mu (a callback takes its protocol
// client's own mutex, and the submission path holds that mutex while calling
// Register — invoking callbacks under p.mu would invert that order).
type Pipeline struct {
	node transport.Node
	tr   *trace.Trace

	// slots is the in-flight depth semaphore: Acquire fills, completion
	// (or abort) drains.
	slots chan struct{}

	mu     sync.Mutex
	closed bool
	ops    []*Op

	// done closes when the dispatcher exits; Acquire uses it to fail fast on
	// a dead pipeline instead of blocking on a slot forever.
	done chan struct{}
}

// NewPipeline builds an engine over the node with the given in-flight depth
// (DefaultPipelineDepth if depth <= 0) and starts its dispatcher. The
// dispatcher must run from construction, not lazily on first use: a handle
// that has not submitted anything yet can still RECEIVE traffic — a reader
// incarnation created by a restart inherits the acknowledgements its
// predecessor's aborted operations left in flight — and an unconsumed inbox
// queues forever (and, under the virtual clock, holds an activity token
// that stalls the event loop outright).
func NewPipeline(node transport.Node, depth int, tr *trace.Trace) *Pipeline {
	if depth <= 0 {
		depth = DefaultPipelineDepth
	}
	if depth > MaxPipelineDepth {
		depth = MaxPipelineDepth
	}
	p := &Pipeline{
		node:  node,
		tr:    tr,
		slots: make(chan struct{}, depth),
		done:  make(chan struct{}),
	}
	go p.dispatch()
	return p
}

// Depth returns the configured in-flight bound.
func (p *Pipeline) Depth() int { return cap(p.slots) }

// Op is one in-flight operation's state machine: the acknowledgements
// collected so far, keyed off the servers that sent them, and the completion
// to run when the quorum assembles (or the operation dies).
type Op struct {
	p      *Pipeline
	need   int
	filter AckFilter
	// complete runs exactly once, outside the engine mutex: with the quorum
	// acknowledgements on success, or with a nil slice and the fatal error.
	complete func(acks []Ack, err error)
	// handler, when non-nil, replaces the filter/complete pair (see
	// OpHandler and RegisterHandler).
	handler OpHandler
	// keepSlot marks an intermediate phase of a multi-phase operation: its
	// completion hands the in-flight slot to the next phase instead of
	// releasing it (see RegisterPhase).
	keepSlot bool

	// Guarded by p.mu.
	seen []types.ProcessID
	acks []Ack
	done bool

	// seenBuf and acksBuf are the inline backing arrays used when the quorum
	// fits (it almost always does: quorums are S-t of a handful of servers),
	// so registering an operation allocates only the Op itself.
	seenBuf [8]types.ProcessID
	acksBuf [8]Ack
}

// Acquire reserves one in-flight slot, blocking while the pipeline is at
// depth. It fails with the context's error, or with ErrInboxClosed once the
// node is gone. If the context carries an admission budget
// (WithAdmissionWait) and no slot frees within it, Acquire fails fast with
// ErrOverloaded — the typed signal the open-loop harness and overloaded
// clients shed on rather than queueing without bound.
func (p *Pipeline) Acquire(ctx context.Context) error {
	// Fast path: a free slot costs one channel op and never consults the
	// context, so admission control is free when the pipeline has headroom.
	select {
	case p.slots <- struct{}{}:
		return nil
	default:
	}
	if d := admissionWait(ctx); d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case p.slots <- struct{}{}:
			return nil
		case <-timer.C:
			return ErrOverloaded
		case <-ctx.Done():
			return ctx.Err()
		case <-p.done:
			return ErrInboxClosed
		}
	}
	select {
	case p.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-p.done:
		return ErrInboxClosed
	}
}

// release frees one in-flight slot.
func (p *Pipeline) release() {
	<-p.slots
}

// Release frees a slot acquired with Acquire when submission fails BEFORE an
// operation was registered; registered operations release their slot through
// completion or Abort instead.
func (p *Pipeline) Release() { p.release() }

// Register adds an operation waiting for `need` acknowledgements accepted by
// the filter. The caller must hold a slot from Acquire and should register
// BEFORE broadcasting its request, so no acknowledgement can race past the
// dispatcher unmatched. If the pipeline is already dead the operation fails
// asynchronously (the completion still runs exactly once, with
// ErrInboxClosed).
func (p *Pipeline) Register(need int, filter AckFilter, complete func(acks []Ack, err error)) *Op {
	return p.register(need, filter, complete, nil, false)
}

// OpHandler bundles an operation's acceptance predicate and completion in
// one value: the allocation-conscious alternative to Register's closure pair.
// A protocol client keeps one pooled per-operation struct implementing
// OpHandler, and registering its pointer converts to the interface without
// allocating — where the closure pair costs two allocations per operation.
type OpHandler interface {
	// Accept reports whether the acknowledgement belongs to this operation
	// (same contract as AckFilter). It runs under the engine mutex.
	Accept(from types.ProcessID, m *wire.Message) bool
	// Complete runs exactly once, outside the engine mutex: with the quorum
	// acknowledgements on success, or with nil acks and the fatal error. The
	// acks (and everything they alias) are released when Complete returns.
	Complete(acks []Ack, err error)
}

// RegisterHandler is Register with the filter and completion folded into one
// OpHandler value.
func (p *Pipeline) RegisterHandler(need int, h OpHandler) *Op {
	return p.register(need, nil, nil, h, false)
}

// RegisterPhase is Register for an INTERMEDIATE phase of a multi-phase
// operation (the ABD read's query before its write-back): completing it does
// NOT free the in-flight slot — the slot stays held for the next phase,
// whose final Register (or an explicit Release on the error path) frees it.
// One Acquire therefore bounds whole operations, not round-trips.
func (p *Pipeline) RegisterPhase(need int, filter AckFilter, complete func(acks []Ack, err error)) *Op {
	return p.register(need, filter, complete, nil, true)
}

func (p *Pipeline) register(need int, filter AckFilter, complete func(acks []Ack, err error), handler OpHandler, keepSlot bool) *Op {
	op := &Op{
		p: p, need: need, filter: filter, complete: complete, handler: handler, keepSlot: keepSlot,
	}
	if need <= len(op.seenBuf) {
		op.seen = op.seenBuf[:0]
		op.acks = op.acksBuf[:0]
	} else {
		// Quorum sizes are known up front: one allocation each, no growth.
		op.seen = make([]types.ProcessID, 0, need)
		op.acks = make([]Ack, 0, need)
	}
	p.mu.Lock()
	if p.closed {
		op.done = true
		p.mu.Unlock()
		// Asynchronously: the caller typically holds its protocol mutex here
		// and the completion will want it too.
		go op.finish(nil, ErrInboxClosed)
		return op
	}
	p.ops = append(p.ops, op)
	p.mu.Unlock()
	return op
}

// Abort fails the operation with the given error if it has not completed
// yet: it is deregistered, its completion runs with err, and its slot frees.
// Aborting one operation never disturbs its siblings — their
// acknowledgements keep flowing through the dispatcher. Abort after
// completion is a no-op, so racing a quorum is safe.
func (op *Op) Abort(err error) {
	p := op.p
	p.mu.Lock()
	if op.done {
		p.mu.Unlock()
		return
	}
	op.done = true
	p.removeLocked(op)
	p.mu.Unlock()
	op.finish(nil, err)
}

// finish runs the completion exactly once (the caller has already claimed
// op.done under p.mu) and frees the slot, unless an intermediate phase keeps
// it for its successor. After the completion returns, every acknowledgement
// the operation collected — including partial collections on abort and
// inbox-closed paths — returns to the pools: the completion is the last code
// to see the acks, and the protocols' completions clone whatever they retain
// (rule 3) before returning.
func (op *Op) finish(acks []Ack, err error) {
	if op.handler != nil {
		op.handler.Complete(acks, err)
	} else {
		op.complete(acks, err)
	}
	for i := range op.acks {
		op.acks[i].release()
	}
	op.acks = op.acks[:0]
	if !op.keepSlot {
		op.p.release()
	}
}

// removeLocked drops the operation from the pending set. Callers hold p.mu.
func (p *Pipeline) removeLocked(op *Op) {
	for i, o := range p.ops {
		if o == op {
			last := len(p.ops) - 1
			p.ops[i] = p.ops[last]
			p.ops[last] = nil
			p.ops = p.ops[:last]
			return
		}
	}
}

// dispatch drains the inbox until the node closes, routing every delivered
// acknowledgement to the operations it satisfies. Batch envelopes are
// expanded inline; decoding reuses one pooled scratch message, so traffic
// that matches no operation costs no allocations (exactly like the serial
// collector).
func (p *Pipeline) dispatch() {
	defer close(p.done)
	scratch := wire.GetMessage()
	defer wire.PutMessage(scratch)
	for m := range p.node.Inbox() {
		if wire.IsBatch(m.Payload) {
			from, arena := m.From, m.Arena
			_ = wire.ForEachInBatch(m.Payload, func(sub []byte) error {
				p.handlePayload(from, sub, arena, scratch)
				return nil
			})
		} else {
			p.handlePayload(m.From, m.Payload, m.Arena, scratch)
		}
		// The delivered message's own arena reference; accepted acks took
		// their own in handlePayload.
		m.ReleaseArena()
	}

	// Inbox closed: every pending operation dies with ErrInboxClosed.
	p.mu.Lock()
	p.closed = true
	pending := p.ops
	p.ops = nil
	for _, op := range pending {
		op.done = true
	}
	p.mu.Unlock()
	for _, op := range pending {
		op.finish(nil, ErrInboxClosed)
	}
}

// handlePayload offers one delivered payload to every pending operation. A
// message may satisfy SEVERAL operations at once (the majority protocols'
// write filters accept any acknowledgement with ts' ≥ ts, so one ack can
// complete two pipelined writes); each accepting operation records its OWN
// pooled copy of the message — exclusive ownership is what lets finish return
// each ack to the pool without coordinating with sibling operations. The
// copies' byte fields alias the delivered payload, so each ack also takes one
// reference on the frame's arena (nil for the in-memory transport, where the
// payload is GC-owned and may be aliased forever). Completions fire after the
// engine lock is released.
func (p *Pipeline) handlePayload(from types.ProcessID, payload []byte, arena *wire.Arena, scratch *wire.Message) {
	if from.Role != types.RoleServer {
		return
	}
	if err := wire.DecodeInto(scratch, payload); err != nil {
		if p.tr.Enabled() {
			p.tr.Record(trace.KindDrop, p.node.ID(), from, "malformed payload: %v", err)
		}
		return
	}

	matched := false
	var completed []*Op
	p.mu.Lock()
	for i := 0; i < len(p.ops); i++ {
		op := p.ops[i]
		if op.done || op.hasSeen(from) {
			continue
		}
		if !op.accepts(from, scratch) {
			continue
		}
		matched = true
		d := wire.GetMessage()
		scratch.CopyAliasInto(d)
		if arena != nil {
			arena.Ref()
		}
		op.seen = append(op.seen, from)
		op.acks = append(op.acks, Ack{From: from, Msg: d, Arena: arena})
		if len(op.acks) >= op.need {
			op.done = true
			completed = append(completed, op)
			p.removeLocked(op)
			i-- // removeLocked swapped the last op into slot i
		}
	}
	p.mu.Unlock()

	if p.tr.Enabled() {
		if matched {
			p.tr.Record(trace.KindReceive, p.node.ID(), from, "%s ts=%d rc=%d", scratch.Op, scratch.TS, scratch.RCounter)
		} else {
			p.tr.Record(trace.KindDrop, p.node.ID(), from, "unmatched %s ts=%d rc=%d", scratch.Op, scratch.TS, scratch.RCounter)
		}
	}
	for _, op := range completed {
		op.finish(op.acks, nil)
	}
}

// accepts routes the acceptance decision to the handler or the filter.
func (op *Op) accepts(from types.ProcessID, m *wire.Message) bool {
	if op.handler != nil {
		return op.handler.Accept(from, m)
	}
	return op.filter == nil || op.filter(from, m)
}

// hasSeen reports whether the operation already accepted an acknowledgement
// from the server. Linear scan: quorums are small.
func (op *Op) hasSeen(from types.ProcessID) bool {
	for _, s := range op.seen {
		if s == from {
			return true
		}
	}
	return false
}

// Future is the resolution of one asynchronous operation: the protocol
// client resolves it from the operation's completion callback, and the
// caller waits on Done or Result. A Future tracks the operation currently
// backing it (Rebind moves it between a multi-phase protocol's phases), so
// cancelling the wait aborts exactly that operation.
type Future[T any] struct {
	done chan struct{}

	mu        sync.Mutex
	op        *Op
	stop      func() bool // releases the bound context's AfterFunc
	cancelErr error       // sticky abort intent, applied to later rebinds
	resolved  bool

	val T
	err error
}

// NewFuture returns an unresolved future.
func NewFuture[T any]() *Future[T] {
	return &Future[T]{done: make(chan struct{})}
}

// Bind attaches the future to its operation and arms the context: if ctx
// ends first, the CURRENT operation aborts with the context's error (and the
// abort intent sticks to operations bound later). Bind is called once per
// phase via Rebind; the AfterFunc registration costs nothing until the
// context actually fires.
func (f *Future[T]) Bind(ctx context.Context, op *Op) {
	f.mu.Lock()
	f.op = op
	cancelled := f.cancelErr
	if f.stop == nil && !f.resolved {
		f.stop = context.AfterFunc(ctx, func() {
			f.abort(ctx.Err())
		})
	}
	f.mu.Unlock()
	if cancelled != nil {
		op.Abort(cancelled)
	}
}

// Rebind moves the future onto the next phase's operation, honouring any
// abort that raced the phase boundary.
func (f *Future[T]) Rebind(op *Op) {
	f.mu.Lock()
	f.op = op
	cancelled := f.cancelErr
	f.mu.Unlock()
	if cancelled != nil {
		op.Abort(cancelled)
	}
}

// abort records the cancellation intent and aborts the currently bound
// operation (whose completion resolves the future).
func (f *Future[T]) abort(err error) {
	f.mu.Lock()
	if f.resolved {
		f.mu.Unlock()
		return
	}
	if f.cancelErr == nil {
		f.cancelErr = err
	}
	op := f.op
	f.mu.Unlock()
	if op != nil {
		op.Abort(err)
	}
}

// Resolve settles the future. Exactly one Resolve wins; later calls are
// ignored (a context abort racing a quorum completion is benign either way).
func (f *Future[T]) Resolve(val T, err error) {
	f.mu.Lock()
	if f.resolved {
		f.mu.Unlock()
		return
	}
	f.resolved = true
	f.val = val
	f.err = err
	stop := f.stop
	f.mu.Unlock()
	if stop != nil {
		stop()
	}
	close(f.done)
}

// Done closes when the future resolves.
func (f *Future[T]) Done() <-chan struct{} { return f.done }

// Result blocks until the future resolves and returns its outcome. If ctx
// ends first the backing operation is aborted — resolving the future with
// the context's error — while sibling in-flight operations on the same
// handle are untouched.
func (f *Future[T]) Result(ctx context.Context) (T, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		f.abort(ctx.Err())
		<-f.done
		return f.val, f.err
	}
}
