// Package protoutil contains the client-side round-trip machinery shared by
// every register protocol: broadcasting a request to all servers and
// collecting acknowledgements from a quorum of distinct servers.
//
// Keeping this logic in one place guarantees that all protocols implement the
// same notion of a "communication round-trip" (Section 3.2 of the paper): the
// client sends messages to a subset of processes, each recipient replies
// without waiting for any other message, and the client returns after
// receiving sufficiently many replies. The round-trip counters exposed here
// are what the experiments report as time complexity.
package protoutil

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fastread/internal/trace"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// Errors returned by the round-trip helpers.
var (
	// ErrInterrupted indicates the context was cancelled or timed out before
	// the quorum was assembled.
	ErrInterrupted = errors.New("protoutil: operation interrupted before quorum")
	// ErrInboxClosed indicates the client's transport node was closed while
	// waiting for acknowledgements.
	ErrInboxClosed = errors.New("protoutil: transport inbox closed")
	// ErrOverloaded indicates the pipeline's depth semaphore stayed
	// saturated past the caller's admission budget (WithAdmissionWait):
	// the operation was rejected BEFORE consuming a slot or touching the
	// wire, so the caller can shed it immediately instead of joining an
	// unbounded queue. Returned only when an admission budget is set —
	// without one, Acquire blocks as it always has.
	ErrOverloaded = errors.New("protoutil: pipeline overloaded, admission budget exceeded")
)

// admissionKey carries the admission-wait budget through a context.
type admissionKey struct{}

// WithAdmissionWait returns a context that bounds how long a pipeline
// submission may wait for a free depth slot. If the semaphore is still full
// after d, Acquire fails fast with ErrOverloaded instead of queueing — the
// client-side half of overload control (the server-side half is the bounded
// mailbox shed policy in internal/transport). d <= 0 leaves the default
// block-until-free behaviour. The budget is read only on Acquire's slow path,
// so an unsaturated pipeline never pays for it.
func WithAdmissionWait(ctx context.Context, d time.Duration) context.Context {
	if d <= 0 {
		return ctx
	}
	return context.WithValue(ctx, admissionKey{}, d)
}

// admissionWait extracts the admission budget, or 0 when unset.
func admissionWait(ctx context.Context) time.Duration {
	d, _ := ctx.Value(admissionKey{}).(time.Duration)
	return d
}

// WireKeyFunc is the transport.Demux routing function shared by every
// multi-register client: it routes a delivered message by the register key
// carried in its payload (as an aliasing byte view — routing allocates
// nothing) and drops undecodable payloads. Keeping the single definition
// here guarantees the in-memory Store and the TCP clients route identically.
func WireKeyFunc(m transport.Message) ([]byte, bool) {
	key, err := wire.PeekKeyView(m.Payload)
	if err != nil {
		return nil, false
	}
	return key, true
}

// InitialNonce returns the starting operation counter for a fresh client
// handle. Servers remember the highest counter each client identity used
// (the stale-request guard of Figure 2 line 26 persists across that
// client's restarts), so a restarted process reusing its identity — a
// redeployed cmd/regclient reader, say — must resume ABOVE its previous
// incarnation's counters or every operation it submits is classified stale
// and starves. Wall-clock microseconds are monotone across restarts on any
// sanely-timed host, strictly below any later incarnation's clock, and
// leave the int64 range ~292k years of headroom; within one incarnation
// the handle increments from here as before.
func InitialNonce() int64 { return time.Now().UnixMicro() }

// StartNonce resolves a client's initial operation counter: the configured
// value when positive, a fresh wall-clock InitialNonce otherwise. The
// override exists for deterministic simulation, where wall-clock nonces
// would make every run unique; the simulator injects virtual-clock
// microseconds instead, which preserve the restart-incarnation ordering
// InitialNonce provides (a handle restarted later in virtual time resumes
// above its predecessor) while being identical across runs of one seed.
func StartNonce(n int64) int64 {
	if n > 0 {
		return n
	}
	return InitialNonce()
}

// Broadcast encodes the message once and sends it to every listed server.
// Send errors (which only occur when the local node is closed) abort the
// broadcast. Ownership of the encoded payload passes to the transport (see
// the codec's buffer-ownership rules); the message itself is not retained, so
// callers may let its fields alias state they own.
func Broadcast(node transport.Node, servers []types.ProcessID, msg *wire.Message, tr *trace.Trace) error {
	payload, err := wire.Encode(msg)
	if err != nil {
		return fmt.Errorf("encode %s: %w", msg.Op, err)
	}
	for _, s := range servers {
		if tr.Enabled() {
			tr.Record(trace.KindSend, node.ID(), s, "%s ts=%d rc=%d", msg.Op, msg.TS, msg.RCounter)
		}
		if err := node.Send(s, msg.Kind(), payload); err != nil {
			return fmt.Errorf("send %s to %s: %w", msg.Op, s, err)
		}
	}
	return nil
}

// Ack couples a decoded acknowledgement with the server that sent it.
//
// Acks collected by the Pipeline are POOLED: Msg is a pooled wire.Message and
// Arena (when the transport decodes frames into refcounted arenas) holds one
// reference keeping the aliased payload alive. The engine releases both after
// the operation's completion returns, which is why completions must clone
// anything they retain (the codec's rule 3). Acks from the serial CollectAcks
// carry a nil Arena and a heap-detached Msg; they are never released and
// simply fall to the garbage collector.
type Ack struct {
	From  types.ProcessID
	Msg   *wire.Message
	Arena *wire.Arena
}

// release returns the ack's pooled resources: the message to the message pool
// and the arena reference it held. Only the pipelined engine calls it (on acks
// IT created); serial acks are GC-managed.
func (a *Ack) release() {
	if a.Msg != nil {
		wire.PutMessage(a.Msg)
		a.Msg = nil
	}
	if a.Arena != nil {
		a.Arena.Release()
		a.Arena = nil
	}
}

// AckFilter decides whether an incoming message is a valid acknowledgement
// for the in-flight operation. Returning false discards the message (e.g. a
// stale ack from a previous operation, a malformed payload or — in the
// arbitrary-failure algorithm — an ack with an invalid writer signature).
type AckFilter func(from types.ProcessID, msg *wire.Message) bool

// CollectAcks waits until acknowledgements from `need` distinct servers have
// been accepted by the filter, then returns them. Messages from non-server
// processes, duplicate acks from the same server, undecodable payloads and
// filter rejections are all ignored, mirroring the paper's convention that a
// process detects and drops incomplete messages. Batch envelopes (a server's
// coalesced acknowledgement run, or a batching transport's coalesced
// delivery) are expanded inline.
//
// Decoding uses a pooled scratch message, so rejected traffic costs no
// allocations. Accepted acks are detached from the scratch but their Cur,
// Prev and WriterSig fields still alias the delivered payload: callers must
// Clone whatever they retain beyond the operation (the codec's rule 3).
// Delivered arena references are deliberately NOT released here — the serial
// collector hands heap-detached acks to callers with unbounded lifetimes, so
// it leans on the arena discipline's fail-safe direction (the frame buffer
// falls to the GC, every view stays valid). The pipelined engine is the
// recycling path.
func CollectAcks(ctx context.Context, node transport.Node, need int, filter AckFilter, tr *trace.Trace) ([]Ack, error) {
	acks := make([]Ack, 0, need)
	seen := make(map[types.ProcessID]bool, need)
	if need <= 0 {
		return acks, nil
	}
	scratch := wire.GetMessage()
	defer wire.PutMessage(scratch)

	// accept examines one delivered payload, appending the ack if it counts.
	accept := func(from types.ProcessID, payload []byte) {
		if seen[from] {
			return
		}
		if err := wire.DecodeInto(scratch, payload); err != nil {
			if tr.Enabled() {
				tr.Record(trace.KindDrop, node.ID(), from, "malformed payload: %v", err)
			}
			return
		}
		if filter != nil && !filter(from, scratch) {
			if tr.Enabled() {
				tr.Record(trace.KindDrop, node.ID(), from, "filtered %s ts=%d rc=%d", scratch.Op, scratch.TS, scratch.RCounter)
			}
			return
		}
		if tr.Enabled() {
			tr.Record(trace.KindReceive, node.ID(), from, "%s ts=%d rc=%d", scratch.Op, scratch.TS, scratch.RCounter)
		}
		seen[from] = true
		acks = append(acks, Ack{From: from, Msg: scratch.Detach()})
	}

	for {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: have %d of %d acks: %w", ErrInterrupted, len(acks), need, ctx.Err())
		case m, ok := <-node.Inbox():
			if !ok {
				return nil, ErrInboxClosed
			}
			if m.From.Role != types.RoleServer {
				continue
			}
			if wire.IsBatch(m.Payload) {
				_ = wire.ForEachInBatch(m.Payload, func(sub []byte) error {
					accept(m.From, sub)
					return nil
				})
			} else {
				accept(m.From, m.Payload)
			}
			if len(acks) >= need {
				return acks, nil
			}
		}
	}
}

// RoundTrip broadcasts the request and collects `need` acknowledgements: one
// complete communication round-trip in the paper's sense.
func RoundTrip(ctx context.Context, node transport.Node, servers []types.ProcessID, req *wire.Message, need int, filter AckFilter, tr *trace.Trace) ([]Ack, error) {
	if err := Broadcast(node, servers, req, tr); err != nil {
		return nil, err
	}
	return CollectAcks(ctx, node, need, filter, tr)
}

// ServerIDs builds the canonical list of server identities s1..sS.
func ServerIDs(count int) []types.ProcessID {
	out := make([]types.ProcessID, count)
	for i := range out {
		out[i] = types.Server(i + 1)
	}
	return out
}

// ReaderIDs builds the canonical list of reader identities r1..rR.
func ReaderIDs(count int) []types.ProcessID {
	out := make([]types.ProcessID, count)
	for i := range out {
		out[i] = types.Reader(i + 1)
	}
	return out
}

// MaxTimestamp returns the largest timestamp among the collected acks, along
// with one ack carrying it. The boolean is false for an empty slice.
func MaxTimestamp(acks []Ack) (types.Timestamp, Ack, bool) {
	if len(acks) == 0 {
		return 0, Ack{}, false
	}
	best := acks[0]
	for _, a := range acks[1:] {
		if a.Msg.TS > best.Msg.TS {
			best = a
		}
	}
	return best.Msg.TS, best, true
}

// FilterByTimestamp returns the subset of acks carrying exactly the given
// timestamp.
func FilterByTimestamp(acks []Ack, ts types.Timestamp) []Ack {
	out := make([]Ack, 0, len(acks))
	for _, a := range acks {
		if a.Msg.TS == ts {
			out = append(out, a)
		}
	}
	return out
}
