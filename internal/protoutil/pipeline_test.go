package protoutil

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// pipeNet joins a client and n servers on a fresh in-memory network.
func pipeNet(t *testing.T, servers int) (transport.Node, []transport.Node) {
	t.Helper()
	net := transport.NewInMemNetwork()
	t.Cleanup(func() { _ = net.Close() })
	client, err := net.Join(types.Reader(1))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]transport.Node, servers)
	for i := range out {
		n, err := net.Join(types.Server(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = n
	}
	return client, out
}

// ackFrom sends an ack carrying rc from the given server node to reader 1.
func ackFrom(t *testing.T, srv transport.Node, rc int64, ts types.Timestamp) {
	t.Helper()
	payload := wire.MustEncode(&wire.Message{Op: wire.OpReadAck, TS: ts, RCounter: rc})
	if err := srv.Send(types.Reader(1), "readack", payload); err != nil {
		t.Fatal(err)
	}
}

// rcFilter accepts read acks carrying exactly rc.
func rcFilter(rc int64) AckFilter {
	return func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpReadAck && m.RCounter == rc
	}
}

func TestPipelineOpsCompleteOutOfOrder(t *testing.T) {
	client, servers := pipeNet(t, 2)
	p := NewPipeline(client, 4, nil)
	ctx := context.Background()

	results := make(chan int64, 2)
	register := func(rc int64) *Op {
		if err := p.Acquire(ctx); err != nil {
			t.Fatal(err)
		}
		return p.Register(2, rcFilter(rc), func(acks []Ack, err error) {
			if err != nil {
				t.Errorf("op rc=%d: %v", rc, err)
				return
			}
			if len(acks) != 2 {
				t.Errorf("op rc=%d completed with %d acks", rc, len(acks))
			}
			results <- rc
		})
	}
	register(1)
	register(2)

	// Complete rc=2 first: its quorum assembles while rc=1 still waits.
	ackFrom(t, servers[0], 2, 0)
	ackFrom(t, servers[1], 2, 0)
	select {
	case got := <-results:
		if got != 2 {
			t.Fatalf("first completion rc=%d, want 2", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rc=2 never completed")
	}
	// A duplicate ack from the same server must not complete rc=1.
	ackFrom(t, servers[0], 1, 0)
	ackFrom(t, servers[0], 1, 0)
	select {
	case got := <-results:
		t.Fatalf("rc=%d completed on a duplicate-server quorum", got)
	case <-time.After(50 * time.Millisecond):
	}
	ackFrom(t, servers[1], 1, 0)
	select {
	case got := <-results:
		if got != 1 {
			t.Fatalf("second completion rc=%d, want 1", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rc=1 never completed")
	}
}

// TestPipelineOneAckSatisfiesSeveralOps mirrors the majority writers'
// filters (ts' >= ts): a single acknowledgement may legitimately count
// toward every in-flight write it covers.
func TestPipelineOneAckSatisfiesSeveralOps(t *testing.T) {
	client, servers := pipeNet(t, 1)
	p := NewPipeline(client, 4, nil)
	ctx := context.Background()

	completions := make(chan int64, 2)
	for _, ts := range []types.Timestamp{1, 2} {
		want := ts
		if err := p.Acquire(ctx); err != nil {
			t.Fatal(err)
		}
		p.Register(1, func(_ types.ProcessID, m *wire.Message) bool {
			return m.Op == wire.OpReadAck && m.TS >= want
		}, func(acks []Ack, err error) {
			if err != nil {
				t.Errorf("op ts=%d: %v", want, err)
				return
			}
			completions <- int64(want)
		})
	}
	// One ack with ts=2 covers both pending ops.
	ackFrom(t, servers[0], 0, 2)
	got := map[int64]bool{}
	for len(got) < 2 {
		select {
		case ts := <-completions:
			got[ts] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("only %v completed on the shared ack", got)
		}
	}
}

func TestPipelineDepthBlocksAcquire(t *testing.T) {
	client, servers := pipeNet(t, 1)
	p := NewPipeline(client, 1, nil)
	ctx := context.Background()

	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	p.Register(1, rcFilter(7), func([]Ack, error) { close(done) })

	// The depth-1 pipeline is full: a bounded Acquire must time out.
	shortCtx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if err := p.Acquire(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Acquire at depth = %v, want DeadlineExceeded", err)
	}
	// Completion frees the slot.
	ackFrom(t, servers[0], 7, 0)
	<-done
	acquireCtx, cancel2 := context.WithTimeout(ctx, 5*time.Second)
	defer cancel2()
	if err := p.Acquire(acquireCtx); err != nil {
		t.Fatalf("Acquire after completion: %v", err)
	}
}

func TestPipelineAbortIsolatesSiblings(t *testing.T) {
	client, servers := pipeNet(t, 1)
	p := NewPipeline(client, 4, nil)
	ctx := context.Background()

	var abortedErr atomic.Value
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	victim := p.Register(1, rcFilter(1), func(_ []Ack, err error) { abortedErr.Store(err) })

	survivorDone := make(chan error, 1)
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	p.Register(1, rcFilter(2), func(_ []Ack, err error) { survivorDone <- err })

	boom := errors.New("cancelled")
	victim.Abort(boom)
	victim.Abort(boom) // idempotent
	if got := abortedErr.Load(); got == nil || !errors.Is(got.(error), boom) {
		t.Fatalf("victim resolved with %v, want the abort error", got)
	}
	// The sibling still completes on its own ack.
	ackFrom(t, servers[0], 2, 0)
	select {
	case err := <-survivorDone:
		if err != nil {
			t.Fatalf("sibling failed after sibling abort: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sibling starved after sibling abort")
	}
	// The victim's slot was released: the pipeline still has full depth.
	for i := 0; i < p.Depth(); i++ {
		acquireCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		if err := p.Acquire(acquireCtx); err != nil {
			cancel()
			t.Fatalf("slot %d not recoverable after abort: %v", i, err)
		}
		cancel()
	}
}

func TestPipelineInboxCloseFailsPendingOps(t *testing.T) {
	client, _ := pipeNet(t, 1)
	p := NewPipeline(client, 4, nil)
	ctx := context.Background()

	errs := make(chan error, 2)
	for rc := int64(1); rc <= 2; rc++ {
		if err := p.Acquire(ctx); err != nil {
			t.Fatal(err)
		}
		p.Register(1, rcFilter(rc), func(_ []Ack, err error) { errs <- err })
	}
	_ = client.Close()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrInboxClosed) {
				t.Fatalf("pending op resolved with %v, want ErrInboxClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("pending op never failed after inbox close")
		}
	}
	// Late submissions fail too (asynchronously but promptly).
	if err := p.Acquire(ctx); !errors.Is(err, ErrInboxClosed) {
		// A free slot may win the select race; registration still fails.
		if err != nil {
			t.Fatalf("Acquire on dead pipeline: %v", err)
		}
		p.Register(1, rcFilter(9), func(_ []Ack, err error) { errs <- err })
		select {
		case err := <-errs:
			if !errors.Is(err, ErrInboxClosed) {
				t.Fatalf("late op resolved with %v, want ErrInboxClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("late op never failed")
		}
	}
}

// TestFutureCtxAbortBeforeBind pins the phase-boundary race: a context that
// fires before (re)binding must abort the operation bound afterwards.
func TestFutureCtxAbortBeforeBind(t *testing.T) {
	client, _ := pipeNet(t, 1)
	p := NewPipeline(client, 4, nil)

	f := NewFuture[int]()
	ctx, cancel := context.WithCancel(context.Background())

	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	op1 := p.Register(1, rcFilter(1), func(_ []Ack, err error) {
		if err != nil {
			f.Resolve(0, err)
		}
	})
	f.Bind(ctx, op1)
	cancel() // aborts op1, resolving the future

	if _, err := f.Result(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("future resolved with %v, want context.Canceled", err)
	}

	// Rebind after a cancellation must abort the new op immediately.
	f2 := NewFuture[int]()
	ctx2, cancel2 := context.WithCancel(context.Background())
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	opA := p.RegisterPhase(1, rcFilter(2), func(_ []Ack, err error) {
		if err != nil {
			f2.Resolve(0, err)
			p.Release()
		}
	})
	f2.Bind(ctx2, opA)
	cancel2()
	<-f2.Done()
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	resolved := make(chan error, 1)
	opB := p.Register(1, rcFilter(3), func(_ []Ack, err error) { resolved <- err })
	f2.Rebind(opB) // the sticky cancellation must abort opB
	select {
	case err := <-resolved:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("rebound op resolved with %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rebound op not aborted by sticky cancellation")
	}
}

func TestPipelineDepthClamped(t *testing.T) {
	client, _ := pipeNet(t, 1)
	if got := NewPipeline(client, MaxPipelineDepth*4, nil).Depth(); got != MaxPipelineDepth {
		t.Fatalf("Depth = %d, want clamped to %d", got, MaxPipelineDepth)
	}
	if got := NewPipeline(client, 0, nil).Depth(); got != DefaultPipelineDepth {
		t.Fatalf("Depth = %d, want default %d", got, DefaultPipelineDepth)
	}
}
