package fastread

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"fastread/internal/atomicity"
	"fastread/internal/history"
	"fastread/internal/types"
)

// TestUDPStoreEndToEnd drives NewStore over the UDP backend on loopback for
// every registered protocol: every server, the writer and the reader is a
// real datagram endpoint with an ephemeral port, with batched send/receive
// syscalls on the hot path. Loopback keeps datagram loss out of the picture,
// so the protocol-visible behaviour must match the TCP and in-memory
// backends exactly; a clean shutdown must leak no goroutines.
func TestUDPStoreEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	protocols := []Protocol{ProtocolFast, ProtocolFastByzantine, ProtocolABD, ProtocolMaxMin, ProtocolRegular}
	for _, proto := range protocols {
		// NOT parallel: each run measures goroutine leakage against a global
		// baseline.
		t.Run(proto.String(), func(t *testing.T) {
			baseline := runtime.NumGoroutine()

			cfg := Config{Servers: 4, Faulty: 1, Readers: 1, Protocol: proto, Transport: UDP(nil)}
			store, err := NewStore(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()

			for _, key := range []string{"", "user/42"} {
				reg, err := store.Register(key)
				if err != nil {
					t.Fatal(err)
				}
				reader, err := reg.Reader(1)
				if err != nil {
					t.Fatal(err)
				}
				var lastVersion int64
				for i := 1; i <= 5; i++ {
					want := fmt.Sprintf("%s/payload-%d", key, i)
					if err := reg.Writer().Write(ctx, []byte(want)); err != nil {
						t.Fatalf("write %d on %q: %v", i, key, err)
					}
					res, err := reader.Read(ctx)
					if err != nil {
						t.Fatalf("read %d on %q: %v", i, key, err)
					}
					if string(res.Value) != want {
						t.Fatalf("read %d on %q = %q, want %q", i, key, res.Value, want)
					}
					if res.Version < lastVersion {
						t.Fatalf("timestamp went backwards on %q: %d after %d", key, res.Version, lastVersion)
					}
					lastVersion = res.Version
				}
			}

			stats := store.Stats()
			if stats.Writes != 10 || stats.Reads != 10 {
				t.Errorf("stats = %d writes / %d reads, want 10/10", stats.Writes, stats.Reads)
			}
			if stats.DeliveredMsgs == 0 {
				t.Error("UDP transport delivered no messages")
			}
			if stats.DedupDrops != 0 {
				// Loopback cannot duplicate datagrams; a nonzero count here
				// means the sequence windows are misfiring.
				t.Errorf("DedupDrops = %d on loopback, want 0", stats.DedupDrops)
			}

			if err := store.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			waitForGoroutines(t, baseline)
		})
	}
}

// TestUDPStoreFaultInjectionUnsupported verifies the capability seam on the
// UDP backend.
func TestUDPStoreFaultInjectionUnsupported(t *testing.T) {
	store, err := NewStore(Config{Servers: 3, Faulty: 1, Readers: 1, Protocol: ProtocolABD, Transport: UDP(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	if err := store.CrashServer(1); !errors.Is(err, ErrUnsupported) {
		t.Errorf("CrashServer on UDP = %v, want ErrUnsupported", err)
	}
	if _, err := store.Network(); !errors.Is(err, ErrUnsupported) {
		t.Errorf("Network on UDP = %v, want ErrUnsupported", err)
	}
}

// TestUDPPipelinedReadAtomicity runs the linearizability checker over
// histories produced with full read pipelines on the UDP backend — the
// regime where batch datagrams, arena-backed decoding and the dedup windows
// all operate at once. The histories must stay atomic, exactly as in memory.
func TestUDPPipelinedReadAtomicity(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	scenarios := []struct {
		name string
		cfg  Config
	}{
		{"fast", Config{Servers: 7, Faulty: 1, Readers: 2, Protocol: ProtocolFast, ServerWorkers: 4, PipelineDepth: 8, Transport: UDP(nil)}},
		{"abd", Config{Servers: 5, Faulty: 2, Readers: 2, Protocol: ProtocolABD, ServerWorkers: 4, PipelineDepth: 8, Transport: UDP(nil)}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			store, err := NewStore(sc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			reg, err := store.Register("pipelined-udp")
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()

			rec := history.NewRecorder()
			const writes = 30
			const readsPerReader = 60

			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 1; i <= writes; i++ {
					value := types.Value(fmt.Sprintf("uv%d", i))
					id := rec.Invoke(types.Writer(), history.OpWrite, value)
					if err := reg.Writer().Write(ctx, value); err != nil {
						rec.Fail(id)
						t.Errorf("write %d: %v", i, err)
						return
					}
					rec.Return(id, nil, types.Timestamp(i))
				}
			}()

			readersDone := make(chan struct{}, sc.cfg.Readers)
			for ri := 1; ri <= sc.cfg.Readers; ri++ {
				reader, err := reg.Reader(ri)
				if err != nil {
					t.Fatal(err)
				}
				go func(ri int, reader Reader) {
					pipelinedReads(ctx, t, rec, types.Reader(ri), reader, readsPerReader, sc.cfg.PipelineDepth)
					readersDone <- struct{}{}
				}(ri, reader)
			}
			<-done
			for i := 0; i < sc.cfg.Readers; i++ {
				<-readersDone
			}

			report, err := atomicity.CheckSWMR(rec.History())
			if err != nil {
				t.Fatal(err)
			}
			if !report.OK {
				t.Fatalf("pipelined UDP history not atomic:\n%s", report)
			}
			if report.Reads == 0 || report.Writes == 0 {
				t.Fatalf("degenerate history: %d writes / %d reads", report.Writes, report.Reads)
			}
		})
	}
}

// TestUDPPacketDropQuorum is the loss-tolerance acceptance test: a receive
// filter suppresses every datagram one server sends, so clients can never
// hear from it — and every operation must still complete through the
// surviving S−t quorum, the protocols' core liveness claim on a lossy
// network.
func TestUDPPacketDropQuorum(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	scenarios := []struct {
		name   string
		proto  Protocol
		S, t   int
		silent string // server whose outbound datagrams all vanish
	}{
		{"fast", ProtocolFast, 4, 1, "s1"},
		{"abd", ProtocolABD, 3, 1, "s2"},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			var filtered atomic.Int64
			transport := UDP(nil, WithReceiveFilter(func(from string) bool {
				if from == sc.silent {
					filtered.Add(1)
					return false
				}
				return true
			}))
			store, err := NewStore(Config{Servers: sc.S, Faulty: sc.t, Readers: 1, Protocol: sc.proto, Transport: transport})
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			reg, err := store.Register("lossy")
			if err != nil {
				t.Fatal(err)
			}
			reader, err := reg.Reader(1)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()

			for i := 1; i <= 5; i++ {
				want := fmt.Sprintf("survives-%d", i)
				if err := reg.Writer().Write(ctx, []byte(want)); err != nil {
					t.Fatalf("write %d under packet loss: %v", i, err)
				}
				res, err := reader.Read(ctx)
				if err != nil {
					t.Fatalf("read %d under packet loss: %v", i, err)
				}
				if string(res.Value) != want {
					t.Fatalf("read %d = %q, want %q", i, res.Value, want)
				}
			}
			if filtered.Load() == 0 {
				t.Fatal("the receive filter never fired; the test dropped nothing")
			}
		})
	}
}
