package fastread

import (
	"context"
	"fmt"
	"testing"
	"time"

	"fastread/internal/atomicity"
	"fastread/internal/fault"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/workload"
)

// mustNetwork returns the cluster's in-memory network; these tests always
// run on the in-memory backend, where the capability is present.
func mustNetwork(t *testing.T, c *Cluster) *transport.InMemNetwork {
	t.Helper()
	net, err := c.Network()
	if err != nil {
		t.Fatalf("Network(): %v", err)
	}
	return net
}

// adaptClients exposes a cluster's clients to the workload driver.
func adaptClients(c *Cluster) workload.Clients {
	clients := workload.Clients{
		Writer: workload.WriterFunc(func(ctx context.Context, v types.Value) error {
			return c.Writer().Write(ctx, v)
		}),
	}
	for _, r := range c.Readers() {
		reader := r
		clients.Readers = append(clients.Readers, workload.ReaderFunc(
			func(ctx context.Context) (types.Value, types.Timestamp, int, error) {
				res, err := reader.Read(ctx)
				if err != nil {
					return nil, 0, 0, err
				}
				return types.Value(res.Value), types.Timestamp(res.Version), res.RoundTrips, nil
			}))
	}
	return clients
}

// TestWorkloadConsistencyPerProtocol drives every protocol through a
// concurrent workload with mid-run crashes and verifies the protocol's
// advertised consistency level: atomicity for the fast, Byzantine, ABD and
// max-min registers, regularity for the regular register.
func TestWorkloadConsistencyPerProtocol(t *testing.T) {
	scenarios := []struct {
		name     string
		cfg      Config
		expected string // "atomic" or "regular"
	}{
		{"fast", Config{Servers: 7, Faulty: 1, Readers: 2, Protocol: ProtocolFast}, "atomic"},
		{"fast-byz", Config{Servers: 11, Faulty: 1, Malicious: 1, Readers: 2, Protocol: ProtocolFastByzantine}, "atomic"},
		{"abd", Config{Servers: 5, Faulty: 2, Readers: 3, Protocol: ProtocolABD}, "atomic"},
		{"maxmin", Config{Servers: 5, Faulty: 2, Readers: 3, Protocol: ProtocolMaxMin}, "atomic"},
		{"regular", Config{Servers: 5, Faulty: 2, Readers: 3, Protocol: ProtocolRegular}, "regular"},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			cluster, err := NewCluster(sc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Close()

			schedule := fault.NewCrashSchedule(fault.CrashEvent{
				Server:   types.Server(sc.cfg.Servers),
				AfterOps: 10,
			})
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			result, err := workload.Run(ctx, workload.Config{
				Writes:         25,
				ReadsPerReader: 30,
				Crashes:        schedule,
				CrashFn:        func(p types.ProcessID) { mustNetwork(t, cluster).Crash(p) },
			}, adaptClients(cluster))
			if err != nil {
				t.Fatal(err)
			}
			if result.CompletedReads == 0 || result.CompletedWrites == 0 {
				t.Fatalf("workload starved: %d writes, %d reads", result.CompletedWrites, result.CompletedReads)
			}

			var report atomicity.Report
			if sc.expected == "atomic" {
				report, err = atomicity.CheckSWMR(result.History)
			} else {
				report, err = atomicity.CheckRegular(result.History)
			}
			if err != nil {
				t.Fatal(err)
			}
			if !report.OK {
				t.Fatalf("%s consistency violated:\n%s", sc.expected, report)
			}

			// Round-trip counts must match the protocol's promise.
			stats := cluster.Stats()
			switch sc.cfg.Protocol {
			case ProtocolABD:
				if stats.ReadRoundsPerOp != 2 {
					t.Errorf("ABD rounds/read = %f, want 2", stats.ReadRoundsPerOp)
				}
			default:
				if stats.ReadRoundsPerOp != 1 {
					t.Errorf("%s rounds/read = %f, want 1", sc.name, stats.ReadRoundsPerOp)
				}
			}
		})
	}
}

// TestFallbackReadsReturnPreviousValue exercises the maxTS−1 path of the fast
// reader through the public API: when a write is stalled before reaching a
// quorum, readers may serve the previous value (and report UsedFallback),
// but must never go backwards afterwards.
func TestFallbackReadsReturnPreviousValue(t *testing.T) {
	cluster, err := NewCluster(Config{Servers: 7, Faulty: 1, Readers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx := testCtx(t)

	if err := cluster.Writer().Write(ctx, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	// Stall the next write: it reaches a single server only.
	for i := 2; i <= 7; i++ {
		mustNetwork(t, cluster).Block(types.Writer(), types.Server(i))
	}
	stallCtx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	if err := cluster.Writer().Write(stallCtx, []byte("stalled")); err == nil {
		t.Fatal("stalled write unexpectedly completed")
	}

	sawFallback := false
	var floor int64
	for i := 0; i < 8; i++ {
		for r := 1; r <= 2; r++ {
			reader, err := cluster.Reader(r)
			if err != nil {
				t.Fatal(err)
			}
			res, err := reader.Read(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if res.UsedFallback {
				sawFallback = true
			}
			if res.Version < floor {
				t.Fatalf("read went backwards: %d after %d", res.Version, floor)
			}
			floor = res.Version
			switch res.Version {
			case 1:
				if string(res.Value) != "committed" {
					t.Fatalf("version 1 carries %q", res.Value)
				}
			case 2:
				if string(res.Value) != "stalled" {
					t.Fatalf("version 2 carries %q", res.Value)
				}
			}
		}
	}
	if !sawFallback {
		t.Log("no read needed the fallback path under this interleaving (acceptable, depends on timing)")
	}
	stats := cluster.Stats()
	if stats.FallbackReads > 0 && !sawFallback {
		t.Error("stats report fallback reads but none was observed")
	}
}

// TestStatsFallbackCounterMatchesResults cross-checks the façade's fallback
// counter against per-read results.
func TestStatsFallbackCounterMatchesResults(t *testing.T) {
	cluster, err := NewCluster(Config{Servers: 4, Faulty: 1, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx := testCtx(t)
	reader, _ := cluster.Reader(1)
	fallbacks := int64(0)
	for i := 0; i < 10; i++ {
		if err := cluster.Writer().Write(ctx, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		res, err := reader.Read(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if res.UsedFallback {
			fallbacks++
		}
	}
	if got := cluster.Stats().FallbackReads; got != fallbacks {
		t.Errorf("Stats.FallbackReads = %d, observed %d", got, fallbacks)
	}
}
