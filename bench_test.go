package fastread

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"fastread/internal/core"
	"fastread/internal/quorum"
	"fastread/internal/sig"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// The benchmarks below regenerate the quantitative comparisons of the
// reproduction (see DESIGN.md §4 and EXPERIMENTS.md):
//
//   - Benchmark{Fast,ABD,MaxMin,Regular}Read and Benchmark*Write are the
//     microbenchmark counterpart of experiment E7 (time complexity of reads
//     and writes per protocol and system size).
//   - BenchmarkByzantine* covers the arbitrary-failure algorithm (E3).
//   - BenchmarkPredicate* is the ablation of the seen-set predicate
//     evaluator called out in DESIGN.md §5.
//   - BenchmarkWire* and BenchmarkSig* quantify the codec and signature
//     substrates.
//
// Absolute numbers are machine-dependent; the shapes (fast ≈ regular,
// ABD ≈ 2× message count per read, signature cost dominating the Byzantine
// write path) are what the paper predicts.

// benchCluster builds a cluster for benchmarking and fails the benchmark on
// error.
func benchCluster(b *testing.B, cfg Config) *Cluster {
	b.Helper()
	cluster, err := NewCluster(cfg)
	if err != nil {
		b.Fatalf("NewCluster: %v", err)
	}
	b.Cleanup(func() { _ = cluster.Close() })
	return cluster
}

// benchCtx returns a long-lived context for benchmark operations.
func benchCtx(b *testing.B) context.Context {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	b.Cleanup(cancel)
	return ctx
}

// readProtocols lists the protocols compared by the read benchmarks.
var readProtocols = []struct {
	name  string
	proto Protocol
}{
	{"Fast", ProtocolFast},
	{"ABD", ProtocolABD},
	{"MaxMin", ProtocolMaxMin},
	{"Regular", ProtocolRegular},
}

// benchmarkRead measures a single reader issuing reads back to back.
func benchmarkRead(b *testing.B, proto Protocol, servers int) {
	b.Helper()
	cluster := benchCluster(b, Config{Servers: servers, Faulty: 1, Readers: 1, Protocol: proto})
	ctx := benchCtx(b)
	if err := cluster.Writer().Write(ctx, []byte("bench-value")); err != nil {
		b.Fatalf("seed write: %v", err)
	}
	reader, err := cluster.Reader(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reader.Read(ctx); err != nil {
			b.Fatalf("read: %v", err)
		}
	}
}

// benchmarkWrite measures the writer issuing writes back to back.
func benchmarkWrite(b *testing.B, proto Protocol, servers int) {
	b.Helper()
	cluster := benchCluster(b, Config{Servers: servers, Faulty: 1, Readers: 1, Protocol: proto})
	ctx := benchCtx(b)
	value := []byte("bench-value")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cluster.Writer().Write(ctx, value); err != nil {
			b.Fatalf("write: %v", err)
		}
	}
}

// BenchmarkFastRead is the canonical hot-path benchmark: one reader of the
// paper's fast register issuing reads back to back over the in-memory
// transport (S=4, t=1). Its allocs/op figure is the PR-over-PR budget for
// the zero-copy codec and transport work; see BENCH_2.json.
func BenchmarkFastRead(b *testing.B) {
	benchmarkRead(b, ProtocolFast, 4)
}

// BenchmarkFastWrite is the matching writer-side hot-path benchmark.
func BenchmarkFastWrite(b *testing.B) {
	benchmarkWrite(b, ProtocolFast, 4)
}

func BenchmarkRead(b *testing.B) {
	for _, proto := range readProtocols {
		for _, servers := range []int{4, 8, 16} {
			b.Run(fmt.Sprintf("%s/S=%d", proto.name, servers), func(b *testing.B) {
				benchmarkRead(b, proto.proto, servers)
			})
		}
	}
}

func BenchmarkWrite(b *testing.B) {
	for _, proto := range readProtocols {
		for _, servers := range []int{4, 8, 16} {
			b.Run(fmt.Sprintf("%s/S=%d", proto.name, servers), func(b *testing.B) {
				benchmarkWrite(b, proto.proto, servers)
			})
		}
	}
}

// BenchmarkReadWithNetworkDelay reproduces the latency table E7 in benchmark
// form: with a uniform per-message delay the protocol's round-trip count is
// directly visible in ns/op.
func BenchmarkReadWithNetworkDelay(b *testing.B) {
	const delay = 200 * time.Microsecond
	for _, proto := range readProtocols {
		b.Run(proto.name, func(b *testing.B) {
			cluster := benchCluster(b, Config{
				Servers: 5, Faulty: 1, Readers: 1, Protocol: proto.proto, NetworkDelay: delay,
			})
			ctx := benchCtx(b)
			if err := cluster.Writer().Write(ctx, []byte("seed")); err != nil {
				b.Fatal(err)
			}
			reader, err := cluster.Reader(1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := reader.Read(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkByzantineFast covers the arbitrary-failure algorithm: the extra
// cost over the crash-model register is one signature per write and one
// verification per accepted acknowledgement.
func BenchmarkByzantineFast(b *testing.B) {
	cfg := Config{Servers: 8, Faulty: 1, Malicious: 1, Readers: 1, Protocol: ProtocolFastByzantine}
	b.Run("Write", func(b *testing.B) {
		cluster := benchCluster(b, cfg)
		ctx := benchCtx(b)
		value := []byte("signed-value")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cluster.Writer().Write(ctx, value); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Read", func(b *testing.B) {
		cluster := benchCluster(b, cfg)
		ctx := benchCtx(b)
		if err := cluster.Writer().Write(ctx, []byte("signed-value")); err != nil {
			b.Fatal(err)
		}
		reader, err := cluster.Reader(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := reader.Read(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkByzantineRead measures steady-state reads of the
// arbitrary-failure register (Figure 5). Every ack carries the same writer
// signature until the next write, so with the verified-signature cache the
// asymmetric crypto drops out of the loop after the first round-trip — this
// benchmark is the cache's acceptance gate (≥2× over the uncached baseline
// recorded in BENCH_2.json).
func BenchmarkByzantineRead(b *testing.B) {
	cluster := benchCluster(b, Config{Servers: 8, Faulty: 1, Malicious: 1, Readers: 1, Protocol: ProtocolFastByzantine})
	ctx := benchCtx(b)
	if err := cluster.Writer().Write(ctx, []byte("signed-value")); err != nil {
		b.Fatal(err)
	}
	reader, err := cluster.Reader(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reader.Read(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredicate is the DESIGN.md §5 ablation of the exact seen-set
// predicate evaluator: cost as a function of the number of readers and of
// the maxTS message count.
func BenchmarkPredicate(b *testing.B) {
	scenarios := []struct {
		name    string
		readers int
		msgs    int
	}{
		{"R=1/msgs=3", 1, 3},
		{"R=4/msgs=8", 4, 8},
		{"R=8/msgs=16", 8, 16},
		{"R=16/msgs=32", 16, 32},
	}
	for _, sc := range scenarios {
		b.Run(sc.name, func(b *testing.B) {
			cfg := quorum.Config{Servers: sc.msgs * 2, Faulty: 1, Readers: sc.readers}
			acks := make([]core.SeenAck, sc.msgs)
			for i := range acks {
				seen := types.NewProcessSet(types.Writer())
				for r := 1; r <= sc.readers; r++ {
					if (i+r)%2 == 0 {
						seen.Add(types.Reader(r))
					}
				}
				acks[i] = core.SeenAck{Server: types.Server(i + 1), Seen: seen}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.EvaluatePredicate(cfg, acks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireCodec quantifies the message codec substrate.
func BenchmarkWireCodec(b *testing.B) {
	msg := &wire.Message{
		Op:       wire.OpReadAck,
		TS:       12345,
		Cur:      types.Value("a realistic register value payload"),
		Prev:     types.Value("the immediately preceding value"),
		Seen:     []types.ProcessID{types.Writer(), types.Reader(1), types.Reader(2), types.Reader(3)},
		RCounter: 42,
	}
	encoded := wire.MustEncode(msg)
	b.Run("Encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wire.Encode(msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wire.Decode(encoded); err != nil {
				b.Fatal(err)
			}
		}
	})
	// AppendEncode into a reused buffer and DecodeInto into a reused message
	// are the hot-path variants: steady state is allocation-free.
	b.Run("AppendEncode", func(b *testing.B) {
		buf := make([]byte, 0, wire.EncodedSize(msg))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := wire.AppendEncode(buf[:0], msg)
			if err != nil {
				b.Fatal(err)
			}
			buf = out[:0]
		}
	})
	b.Run("DecodeInto", func(b *testing.B) {
		var scratch wire.Message
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := wire.DecodeInto(&scratch, encoded); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSignatures quantifies the signature substrate used by the
// arbitrary-failure algorithm (one Sign per write, one Verify per accepted
// acknowledgement).
func BenchmarkSignatures(b *testing.B) {
	kp := sig.MustKeyPair()
	cur := types.Value("a realistic register value payload")
	prev := types.Value("the immediately preceding value")
	signature := kp.Signer.MustSign(7, cur, prev)
	b.Run("Sign", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := kp.Signer.Sign(7, cur, prev); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Verify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := kp.Verifier.Verify(7, cur, prev, signature); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStoreParallelKeys measures aggregate throughput as the number of
// registers multiplexed over one deployment grows: each parallel worker owns
// a subset of the keys and alternates writes and reads on them. This is the
// baseline for the later sharding/batching work — ops/sec should grow with
// the key count (per-key operations are independent) until the shared
// transport saturates.
func BenchmarkStoreParallelKeys(b *testing.B) {
	for _, proto := range []struct {
		name string
		cfg  Config
	}{
		{"Fast", Config{Servers: 7, Faulty: 1, Readers: 1, Protocol: ProtocolFast}},
		{"ABD", Config{Servers: 5, Faulty: 2, Readers: 1, Protocol: ProtocolABD}},
	} {
		for _, keys := range []int{1, 8, 64, 256} {
			b.Run(fmt.Sprintf("%s/keys=%d", proto.name, keys), func(b *testing.B) {
				store, err := NewStore(proto.cfg)
				if err != nil {
					b.Fatalf("NewStore: %v", err)
				}
				b.Cleanup(func() { _ = store.Close() })
				ctx := benchCtx(b)

				regs := make([]*Register, keys)
				for i := range regs {
					reg, err := store.Register(fmt.Sprintf("bench-key-%d", i))
					if err != nil {
						b.Fatal(err)
					}
					regs[i] = reg
					if err := reg.Writer().Write(ctx, []byte("seed")); err != nil {
						b.Fatalf("seed write key %d: %v", i, err)
					}
				}

				var next atomic.Int64
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					// Each worker claims one key (cycling if workers exceed
					// keys) so per-key handles keep their one-op-at-a-time
					// contract; workers on distinct keys run fully in
					// parallel over the shared servers.
					idx := int(next.Add(1)-1) % keys
					reg := regs[idx]
					reader, err := reg.Reader(1)
					if err != nil {
						b.Fatal(err)
					}
					i := 0
					for pb.Next() {
						if i%2 == 0 {
							if err := reg.Writer().Write(ctx, []byte("v")); err != nil {
								b.Fatalf("write: %v", err)
							}
						} else {
							if _, err := reader.Read(ctx); err != nil {
								b.Fatalf("read: %v", err)
							}
						}
						i++
					}
				})
			})
		}
	}
}

// BenchmarkStoreGroups measures horizontal scale-out: the SAME 64-key
// closed-loop workload under the SAME CPU budget (GOMAXPROCS pinned to 4, 16
// client workers), served by 1, 2 or 4 consistent-hash replica groups.
// Every server runs ONE executor worker — the "smallest server" whose
// capacity caps an unpartitioned replica set — so a single group's execution
// and its per-process mailbox pumps are a fixed-size bottleneck no matter
// how many keys it serves, while each added group brings its own servers,
// its own client identities and its own network. On multi-core hardware
// aggregate ops/sec should therefore scale with the group count instead of
// flattening; on a single hardware core the groups only add goroutines to
// overcommit (compare ratios on CI's multi-core runners, as with
// BenchmarkStoreParallelKeys).
func BenchmarkStoreGroups(b *testing.B) {
	const (
		keyCount = 64
		workers  = 16
	)
	for _, groupCount := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("groups=%d", groupCount), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(4)
			defer runtime.GOMAXPROCS(prev)
			specs := make([]GroupSpec, groupCount)
			for i := range specs {
				specs[i] = GroupSpec{Name: fmt.Sprintf("g%d", i)}
			}
			store, err := NewStore(Config{
				Servers: 4, Faulty: 1, Readers: 1, Protocol: ProtocolFast,
				ServerWorkers: 1, Groups: specs,
			})
			if err != nil {
				b.Fatalf("NewStore: %v", err)
			}
			b.Cleanup(func() { _ = store.Close() })
			ctx := benchCtx(b)

			regs := make([]*Register, keyCount)
			for i := range regs {
				reg, err := store.Register(fmt.Sprintf("bench-key-%d", i))
				if err != nil {
					b.Fatal(err)
				}
				regs[i] = reg
				if err := reg.Writer().Write(ctx, []byte("seed")); err != nil {
					b.Fatalf("seed write key %d: %v", i, err)
				}
			}

			// Fix the offered concurrency at `workers` regardless of the
			// GOMAXPROCS pin: RunParallel spawns GOMAXPROCS×p goroutines.
			b.SetParallelism((workers + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Each worker claims one key (as in StoreParallelKeys), so
				// handles keep their one-op-at-a-time contract and the key
				// set — hence the group load mix — is identical across
				// group counts.
				idx := int(next.Add(1)-1) % keyCount
				reg := regs[idx]
				reader, err := reg.Reader(1)
				if err != nil {
					b.Fatal(err)
				}
				i := 0
				for pb.Next() {
					if i%2 == 0 {
						if err := reg.Writer().Write(ctx, []byte("v")); err != nil {
							b.Fatalf("write: %v", err)
						}
					} else {
						if _, err := reader.Read(ctx); err != nil {
							b.Fatalf("read: %v", err)
						}
					}
					i++
				}
			})
		})
	}
}

// BenchmarkPipelinedRead measures one reader handle driving the async read
// API with a fixed window of in-flight operations over the in-memory
// transport. depth=1 is the serial baseline (ReadAsync+Result degenerates to
// Read).
//
// The latency=0 variants isolate the per-operation CPU cost: round trips on
// the zero-delay in-memory network are nearly free, so the depth-16 multiple
// over depth-1 there is bounded by how much scheduling/batching overhead
// pipelining can amortise (and by the host's core count — on a single-core
// container the two depths compete for the same CPU). The latency=200µs
// variants model a real network round trip, the regime pipelining exists
// for: a serial reader pays the full delay per operation while a depth-16
// pipeline overlaps sixteen of them, so ops/sec scale by roughly the depth
// (BENCH_5.json records both ratios; ≥3× at depth ≥ 8 is the acceptance
// gate).
func BenchmarkPipelinedRead(b *testing.B) {
	for _, lat := range []time.Duration{0, 200 * time.Microsecond} {
		for _, depth := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("latency=%s/depth=%d", lat, depth), func(b *testing.B) {
				benchmarkPipelinedRead(b, depth, lat)
			})
		}
	}
}

func benchmarkPipelinedRead(b *testing.B, depth int, delay time.Duration) {
	store, err := NewStore(Config{
		Servers: 4, Faulty: 1, Readers: 1, Protocol: ProtocolFast,
		PipelineDepth: depth, NetworkDelay: delay,
	})
	if err != nil {
		b.Fatalf("NewStore: %v", err)
	}
	b.Cleanup(func() { _ = store.Close() })
	reg, err := store.Register("bench")
	if err != nil {
		b.Fatal(err)
	}
	ctx := benchCtx(b)
	if err := reg.Writer().Write(ctx, []byte("bench-value")); err != nil {
		b.Fatalf("seed write: %v", err)
	}
	reader, err := reg.Reader(1)
	if err != nil {
		b.Fatal(err)
	}

	window := make([]*ReadFuture, 0, depth)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(window) == depth {
			if _, err := window[0].Result(ctx); err != nil {
				b.Fatalf("read: %v", err)
			}
			window = window[1:]
		}
		f, err := reader.ReadAsync(ctx)
		if err != nil {
			b.Fatalf("ReadAsync: %v", err)
		}
		window = append(window, f)
	}
	for _, f := range window {
		if _, err := f.Result(ctx); err != nil {
			b.Fatalf("drain: %v", err)
		}
	}
	b.StopTimer()
	stats := store.Stats()
	if ops := stats.Reads + stats.Writes; ops > 0 {
		b.ReportMetric(float64(stats.DeliveredMsgs)/float64(ops), "msgs/op")
		b.ReportMetric(float64(stats.FramesDelivered)/float64(ops), "frames/op")
	}
}

// BenchmarkPipelinedReadTCP is BenchmarkPipelinedRead over real loopback
// sockets, where the frames/op metric shows the wire-level batching: at
// depth 16 many operations share each length-prefixed frame.
func BenchmarkPipelinedReadTCP(b *testing.B) {
	for _, depth := range []int{1, 16} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			benchmarkPipelinedReadSocket(b, depth, TCP(nil))
		})
	}
}

// BenchmarkPipelinedReadUDP is the same workload over the batched-syscall
// datagram transport: every request and acknowledgement rides sendmmsg/
// recvmmsg batches through per-sender dedup windows, so at depth 16 the
// frames/op metric shows datagram-level batching just as TCP shows frame
// batching.
func BenchmarkPipelinedReadUDP(b *testing.B) {
	for _, depth := range []int{1, 16} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			benchmarkPipelinedReadSocket(b, depth, UDP(nil))
		})
	}
}

// benchmarkPipelinedReadSocket drives one reader's pipelined reads over a
// real socket backend on loopback.
func benchmarkPipelinedReadSocket(b *testing.B, depth int, tr Transport) {
	store, err := NewStore(Config{Servers: 4, Faulty: 1, Readers: 1, Protocol: ProtocolFast, PipelineDepth: depth, Transport: tr})
	if err != nil {
		b.Fatalf("NewStore: %v", err)
	}
	b.Cleanup(func() { _ = store.Close() })
	reg, err := store.Register("bench")
	if err != nil {
		b.Fatal(err)
	}
	ctx := benchCtx(b)
	if err := reg.Writer().Write(ctx, []byte("bench-value")); err != nil {
		b.Fatalf("seed write: %v", err)
	}
	reader, err := reg.Reader(1)
	if err != nil {
		b.Fatal(err)
	}
	window := make([]*ReadFuture, 0, depth)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(window) == depth {
			if _, err := window[0].Result(ctx); err != nil {
				b.Fatalf("read: %v", err)
			}
			window = window[1:]
		}
		f, err := reader.ReadAsync(ctx)
		if err != nil {
			b.Fatalf("ReadAsync: %v", err)
		}
		window = append(window, f)
	}
	for _, f := range window {
		if _, err := f.Result(ctx); err != nil {
			b.Fatalf("drain: %v", err)
		}
	}
	b.StopTimer()
	stats := store.Stats()
	if ops := stats.Reads + stats.Writes; ops > 0 {
		b.ReportMetric(float64(stats.FramesDelivered)/float64(ops), "frames/op")
	}
}

// BenchmarkSaturation measures sustained read throughput at a fixed 4-core
// budget: GOMAXPROCS is pinned to 4, each server runs 4 key-shard workers,
// and one reader per key keeps a deep pipeline full over 4 registers at
// once. The reported ops/sec is what each backend sustains when the CPU —
// not a single operation's round-trip — is the bottleneck, which is the
// regime the raw-speed transport tier exists for. (On machines with fewer
// than 4 CPUs the pin is a no-op upper bound; compare backends within one
// run, not across machines.)
func BenchmarkSaturation(b *testing.B) {
	backends := []struct {
		name string
		tr   Transport
	}{
		{"inmem", nil},
		{"tcp", TCP(nil)},
		{"udp", UDP(nil)},
	}
	const keyCount = 4
	const depth = 32
	for _, be := range backends {
		b.Run(be.name, func(b *testing.B) {
			prev := runtime.GOMAXPROCS(4)
			defer runtime.GOMAXPROCS(prev)
			store, err := NewStore(Config{
				Servers: 4, Faulty: 1, Readers: 1, Protocol: ProtocolFast,
				ServerWorkers: 4, PipelineDepth: depth, Transport: be.tr,
			})
			if err != nil {
				b.Fatalf("NewStore: %v", err)
			}
			b.Cleanup(func() { _ = store.Close() })
			ctx := benchCtx(b)
			readers := make([]Reader, keyCount)
			for k := 0; k < keyCount; k++ {
				reg, err := store.Register(fmt.Sprintf("sat-%d", k))
				if err != nil {
					b.Fatal(err)
				}
				if err := reg.Writer().Write(ctx, []byte("bench-value")); err != nil {
					b.Fatalf("seed write: %v", err)
				}
				if readers[k], err = reg.Reader(1); err != nil {
					b.Fatal(err)
				}
			}
			// Round-robin submission keeps every handle at most depth deep
			// while the combined window holds keyCount*depth operations in
			// flight — enough concurrency to saturate the 4 worker shards.
			type inflightRead struct {
				f   *ReadFuture
				key int
			}
			var retries int
			// The stall deadline and resubmission bound come from the public
			// RetryPolicy — the same discipline ReadWithRetry applies to
			// blocking callers, replayed here at the future level so the
			// pipelined window keeps its depth. stall is reused across
			// harvests (a per-op context.WithTimeout would dominate the
			// allocs/op the bench exists to measure); aborted is a
			// pre-cancelled context for abandoning stalled reads.
			policy := RetryPolicy{Attempts: 8, Timeout: 5 * time.Second}.withDefaults()
			stall := time.NewTimer(time.Hour)
			stall.Stop()
			defer stall.Stop()
			aborted, abort := context.WithCancel(context.Background())
			abort()
			// harvest resolves one in-flight read. The lossy backends can
			// strand an operation outright — the protocols never retransmit,
			// so an op that loses more datagrams than its quorum slack waits
			// forever — in which case the bench does what a real client on a
			// lossy network does: abandon the stalled read (freeing its
			// pipeline slot) and submit a replacement, counted in retries. A
			// loss streak outlasting the policy's attempts fails the bench
			// instead of hanging it.
			harvest := func(p inflightRead) {
				for attempt := 1; ; attempt++ {
					stall.Reset(policy.Timeout)
					select {
					case <-p.f.Done():
						if !stall.Stop() {
							<-stall.C
						}
						if _, err := p.f.Result(ctx); err != nil {
							b.Fatalf("read: %v", err)
						}
						return
					case <-stall.C:
						if attempt >= policy.Attempts {
							b.Fatalf("read stranded after %d attempts of %v each", policy.Attempts, policy.Timeout)
						}
						retries++
						_, err := p.f.Result(aborted) // aborts the stalled read
						if !errors.Is(err, context.Canceled) && err != nil {
							b.Fatalf("abandoning stalled read: %v", err)
						}
						f, err := readers[p.key].ReadAsync(ctx)
						if err != nil {
							b.Fatalf("retry ReadAsync: %v", err)
						}
						p.f = f
					}
				}
			}
			window := make([]inflightRead, 0, keyCount*depth)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(window) >= keyCount*depth {
					harvest(window[0])
					window = window[1:]
				}
				f, err := readers[i%keyCount].ReadAsync(ctx)
				if err != nil {
					b.Fatalf("ReadAsync: %v", err)
				}
				window = append(window, inflightRead{f: f, key: i % keyCount})
			}
			for _, p := range window {
				harvest(p)
			}
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(b.N)/s, "ops/sec")
			}
			if retries > 0 {
				b.ReportMetric(float64(retries), "retries")
			}
		})
	}
}

// BenchmarkConcurrentReaders measures aggregate read throughput with several
// readers sharing the register, the regime where the paper's bound on R
// matters.
func BenchmarkConcurrentReaders(b *testing.B) {
	for _, readers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("R=%d", readers), func(b *testing.B) {
			servers := MinServersForFast(readers, 1, 0)
			cluster := benchCluster(b, Config{Servers: servers, Faulty: 1, Readers: readers, Protocol: ProtocolFast})
			ctx := benchCtx(b)
			if err := cluster.Writer().Write(ctx, []byte("seed")); err != nil {
				b.Fatal(err)
			}
			handles := cluster.Readers()
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Each parallel worker uses one of the reader handles,
				// cycling through the available ones. Handles serialise
				// their own operations, matching the model's one-operation-
				// at-a-time clients.
				idx := int(next.Add(1)-1) % len(handles)
				reader := handles[idx]
				for pb.Next() {
					if _, err := reader.Read(ctx); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
