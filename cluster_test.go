package fastread

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func allProtocols() []Protocol {
	return []Protocol{ProtocolFast, ProtocolFastByzantine, ProtocolABD, ProtocolMaxMin, ProtocolRegular}
}

func configFor(p Protocol) Config {
	cfg := Config{Servers: 5, Faulty: 1, Readers: 2, Protocol: p}
	if p == ProtocolFastByzantine {
		cfg = Config{Servers: 8, Faulty: 1, Malicious: 1, Readers: 1, Protocol: p}
	}
	return cfg
}

func TestAllProtocolsWriteThenRead(t *testing.T) {
	for _, p := range allProtocols() {
		t.Run(p.String(), func(t *testing.T) {
			cluster, err := NewCluster(configFor(p))
			if err != nil {
				t.Fatalf("NewCluster: %v", err)
			}
			defer cluster.Close()
			ctx := testCtx(t)

			r, err := cluster.Reader(1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := r.Read(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if res.Value != nil || res.Version != 0 {
				t.Errorf("initial read = %q v%d, want nil v0", res.Value, res.Version)
			}

			if err := cluster.Writer().Write(ctx, []byte("hello")); err != nil {
				t.Fatalf("write: %v", err)
			}
			res, err = r.Read(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if string(res.Value) != "hello" || res.Version != 1 {
				t.Errorf("read = %q v%d, want hello v1", res.Value, res.Version)
			}

			wantRounds := 1
			if p == ProtocolABD {
				wantRounds = 2
			}
			if res.RoundTrips != wantRounds {
				t.Errorf("read round trips = %d, want %d", res.RoundTrips, wantRounds)
			}
		})
	}
}

func TestAllProtocolsSurviveCrashes(t *testing.T) {
	for _, p := range allProtocols() {
		t.Run(p.String(), func(t *testing.T) {
			cfg := configFor(p)
			cluster, err := NewCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Close()
			ctx := testCtx(t)

			if err := cluster.Writer().Write(ctx, []byte("v1")); err != nil {
				t.Fatal(err)
			}
			if err := cluster.CrashServer(cfg.Servers); err != nil {
				t.Fatal(err)
			}
			if err := cluster.Writer().Write(ctx, []byte("v2")); err != nil {
				t.Fatalf("write after crash: %v", err)
			}
			r, err := cluster.Reader(1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := r.Read(ctx)
			if err != nil {
				t.Fatalf("read after crash: %v", err)
			}
			if string(res.Value) != "v2" {
				t.Errorf("read = %q, want v2", res.Value)
			}
		})
	}
}

func TestClusterStats(t *testing.T) {
	cluster, err := NewCluster(Config{Servers: 4, Faulty: 1, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx := testCtx(t)
	r, _ := cluster.Reader(1)
	for i := 0; i < 3; i++ {
		if err := cluster.Writer().Write(ctx, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Read(ctx); err != nil {
			t.Fatal(err)
		}
	}
	s := cluster.Stats()
	if s.Writes != 3 || s.Reads != 3 {
		t.Errorf("stats ops = %d writes / %d reads", s.Writes, s.Reads)
	}
	if s.ReadRoundsPerOp != 1 || s.WriteRoundsPerOp != 1 {
		t.Errorf("rounds per op = %f/%f, want 1/1", s.ReadRoundsPerOp, s.WriteRoundsPerOp)
	}
	if s.DeliveredMsgs == 0 {
		t.Error("no messages delivered according to stats")
	}
	if s.ServerMutations == 0 {
		t.Error("no server mutations recorded")
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr error
	}{
		{
			name:    "fast beyond reader bound",
			cfg:     Config{Servers: 4, Faulty: 1, Readers: 2, Protocol: ProtocolFast},
			wantErr: ErrTooManyReaders,
		},
		{
			name:    "byzantine beyond bound",
			cfg:     Config{Servers: 5, Faulty: 1, Malicious: 1, Readers: 1, Protocol: ProtocolFastByzantine},
			wantErr: ErrTooManyReaders,
		},
		{
			name:    "unknown protocol",
			cfg:     Config{Servers: 4, Faulty: 1, Readers: 1, Protocol: Protocol(99)},
			wantErr: ErrUnknownProtocol,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewCluster(tt.cfg)
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}

	if _, err := NewCluster(Config{Servers: 2, Faulty: 1, Readers: 1, Protocol: ProtocolABD}); err == nil {
		t.Error("ABD without a correct majority accepted")
	}
	if _, err := NewCluster(Config{Servers: 0}); err == nil {
		t.Error("zero servers accepted")
	}
}

func TestReaderAndServerIndexValidation(t *testing.T) {
	cluster, err := NewCluster(Config{Servers: 4, Faulty: 1, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, err := cluster.Reader(0); !errors.Is(err, ErrUnknownReader) {
		t.Errorf("Reader(0) err = %v", err)
	}
	if _, err := cluster.Reader(2); !errors.Is(err, ErrUnknownReader) {
		t.Errorf("Reader(2) err = %v", err)
	}
	if err := cluster.CrashServer(0); !errors.Is(err, ErrUnknownServer) {
		t.Errorf("CrashServer(0) err = %v", err)
	}
	if err := cluster.CrashServer(9); !errors.Is(err, ErrUnknownServer) {
		t.Errorf("CrashServer(9) err = %v", err)
	}
	if got := len(cluster.Readers()); got != 1 {
		t.Errorf("Readers() len = %d", got)
	}
	if cluster.Config().Servers != 4 {
		t.Error("Config() should round-trip")
	}
}

func TestNetworkDelayIncreasesLatencyProportionally(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	delay := 5 * time.Millisecond
	fast, err := NewCluster(Config{Servers: 4, Faulty: 1, Readers: 1, Protocol: ProtocolFast, NetworkDelay: delay})
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	abdCluster, err := NewCluster(Config{Servers: 4, Faulty: 1, Readers: 1, Protocol: ProtocolABD, NetworkDelay: delay})
	if err != nil {
		t.Fatal(err)
	}
	defer abdCluster.Close()
	ctx := testCtx(t)

	if err := fast.Writer().Write(ctx, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := abdCluster.Writer().Write(ctx, []byte("v")); err != nil {
		t.Fatal(err)
	}

	measure := func(r Reader) time.Duration {
		start := time.Now()
		const n = 5
		for i := 0; i < n; i++ {
			if _, err := r.Read(ctx); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start) / n
	}
	fastReader, _ := fast.Reader(1)
	abdReader, _ := abdCluster.Reader(1)
	fastLat := measure(fastReader)
	abdLat := measure(abdReader)

	// The fast read is one round-trip (≈ 2·delay), ABD two (≈ 4·delay). Allow
	// generous slack but require a clear separation.
	if fastLat >= abdLat {
		t.Errorf("fast read latency %v not below ABD latency %v", fastLat, abdLat)
	}
	if abdLat < 3*delay {
		t.Errorf("ABD latency %v implausibly small for two round-trips of %v", abdLat, delay)
	}
}

func TestConcurrentClientsThroughFacade(t *testing.T) {
	cluster, err := NewCluster(Config{Servers: 7, Faulty: 1, Readers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx := testCtx(t)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := cluster.Writer().Write(ctx, []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	}()
	for _, r := range cluster.Readers() {
		wg.Add(1)
		go func(r Reader) {
			defer wg.Done()
			var last int64
			for i := 0; i < 30; i++ {
				res, err := r.Read(ctx)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if res.Version < last {
					t.Errorf("version went backwards: %d after %d", res.Version, last)
					return
				}
				last = res.Version
			}
		}(r)
	}
	wg.Wait()
}

func TestBoundsHelpers(t *testing.T) {
	if !FastReadPossible(4, 1, 0, 1) || FastReadPossible(4, 1, 0, 2) {
		t.Error("crash bound helpers wrong")
	}
	if !FastReadPossible(8, 1, 1, 1) || FastReadPossible(5, 1, 1, 1) {
		t.Error("byzantine bound helpers wrong")
	}
	if MaxFastReaders(10, 2, 0) != 2 {
		t.Errorf("MaxFastReaders(10,2,0) = %d, want 2", MaxFastReaders(10, 2, 0))
	}
	if MinServersForFast(1, 1, 0) != 4 {
		t.Errorf("MinServersForFast(1,1,0) = %d, want 4", MinServersForFast(1, 1, 0))
	}
	if !RegularPossible(3, 1, 0) || RegularPossible(2, 1, 0) {
		t.Error("RegularPossible wrong")
	}
}

func TestProtocolString(t *testing.T) {
	for _, p := range allProtocols() {
		if p.String() == "" || !p.Valid() {
			t.Errorf("protocol %d invalid", p)
		}
	}
	if Protocol(0).Valid() || Protocol(42).Valid() {
		t.Error("invalid protocols reported valid")
	}
	if Protocol(42).String() == "" {
		t.Error("invalid protocol should still render")
	}
}
