package fastread

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"fastread/internal/atomicity"
	"fastread/internal/history"
	"fastread/internal/types"
)

// pipelinedReads drives one reader handle with up to depth reads in flight,
// recording each read's invocation (at submission) and response (at
// resolution) into the shared history recorder.
func pipelinedReads(ctx context.Context, t *testing.T, rec *history.Recorder, proc types.ProcessID, reader Reader, ops, depth int) {
	t.Helper()
	type pending struct {
		f  *ReadFuture
		id int64
	}
	window := make([]pending, 0, depth)
	harvest := func(p pending) {
		res, err := p.f.Result(ctx)
		if err != nil {
			rec.Fail(p.id)
			t.Errorf("%v pipelined read: %v", proc, err)
			return
		}
		rec.Return(p.id, types.Value(res.Value), types.Timestamp(res.Version))
	}
	for i := 0; i < ops; i++ {
		if len(window) == depth {
			harvest(window[0])
			window = window[1:]
		}
		id := rec.Invoke(proc, history.OpRead, nil)
		f, err := reader.ReadAsync(ctx)
		if err != nil {
			rec.Fail(id)
			t.Errorf("%v ReadAsync: %v", proc, err)
			return
		}
		window = append(window, pending{f: f, id: id})
	}
	for _, p := range window {
		harvest(p)
	}
}

// TestPipelinedReadAtomicity runs the atomicity checker over histories in
// which every reader keeps a full pipeline of reads in flight while the
// writer keeps writing — the regime the serial workload driver never
// produces. Fast and ABD both must stay atomic; servers run 4 key-shard
// workers so completions genuinely race (the CI race job runs this test
// under -race).
func TestPipelinedReadAtomicity(t *testing.T) {
	scenarios := []struct {
		name string
		cfg  Config
	}{
		{"fast", Config{Servers: 7, Faulty: 1, Readers: 2, Protocol: ProtocolFast, ServerWorkers: 4, PipelineDepth: 8}},
		{"abd", Config{Servers: 5, Faulty: 2, Readers: 3, Protocol: ProtocolABD, ServerWorkers: 4, PipelineDepth: 8}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			store, err := NewStore(sc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			reg, err := store.Register("pipelined")
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()

			rec := history.NewRecorder()
			const writes = 40
			readsPerReader := 80

			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 1; i <= writes; i++ {
					value := types.Value(fmt.Sprintf("pv%d", i))
					id := rec.Invoke(types.Writer(), history.OpWrite, value)
					if err := reg.Writer().Write(ctx, value); err != nil {
						rec.Fail(id)
						t.Errorf("write %d: %v", i, err)
						return
					}
					rec.Return(id, nil, types.Timestamp(i))
				}
			}()

			readersDone := make(chan struct{}, sc.cfg.Readers)
			for ri := 1; ri <= sc.cfg.Readers; ri++ {
				reader, err := reg.Reader(ri)
				if err != nil {
					t.Fatal(err)
				}
				go func(ri int, reader Reader) {
					pipelinedReads(ctx, t, rec, types.Reader(ri), reader, readsPerReader, sc.cfg.PipelineDepth)
					readersDone <- struct{}{}
				}(ri, reader)
			}
			<-done
			for i := 0; i < sc.cfg.Readers; i++ {
				<-readersDone
			}

			report, err := atomicity.CheckSWMR(rec.History())
			if err != nil {
				t.Fatal(err)
			}
			if !report.OK {
				t.Fatalf("pipelined history not atomic:\n%s", report)
			}
			if report.Reads == 0 || report.Writes == 0 {
				t.Fatalf("degenerate history: %d writes / %d reads", report.Writes, report.Reads)
			}
		})
	}
}

// TestPipelinedWritesFIFO is the per-writer FIFO regression test: writes
// submitted through a deep pipeline must be applied in submission order —
// versions assigned sequentially, no reader ever observing them out of
// order, and the final state carrying the last submitted value.
func TestPipelinedWritesFIFO(t *testing.T) {
	store, err := NewStore(Config{Servers: 4, Faulty: 1, Readers: 1, Protocol: ProtocolFast, ServerWorkers: 4, PipelineDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	reg, err := store.Register("fifo")
	if err != nil {
		t.Fatal(err)
	}
	reader, err := reg.Reader(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	const writes = 60
	// A concurrent reader polls while the pipelined writes flow: versions
	// must never go backwards, and version k must always carry value "fv<k>".
	stopReads := make(chan struct{})
	readsDone := make(chan error, 1)
	go func() {
		var floor int64
		for {
			select {
			case <-stopReads:
				readsDone <- nil
				return
			default:
			}
			res, err := reader.Read(ctx)
			if err != nil {
				readsDone <- fmt.Errorf("concurrent read: %w", err)
				return
			}
			if res.Version < floor {
				readsDone <- fmt.Errorf("version went backwards: %d after %d", res.Version, floor)
				return
			}
			floor = res.Version
			if res.Version > 0 {
				if want := fmt.Sprintf("fv%d", res.Version); string(res.Value) != want {
					readsDone <- fmt.Errorf("version %d carries %q, want %q", res.Version, res.Value, want)
					return
				}
			}
		}
	}()

	futures := make([]*WriteFuture, 0, writes)
	for i := 1; i <= writes; i++ {
		f, err := reg.Writer().WriteAsync(ctx, []byte(fmt.Sprintf("fv%d", i)))
		if err != nil {
			t.Fatalf("WriteAsync %d: %v", i, err)
		}
		futures = append(futures, f)
	}
	for i, f := range futures {
		if err := f.Result(ctx); err != nil {
			t.Fatalf("write %d: %v", i+1, err)
		}
	}
	close(stopReads)
	if err := <-readsDone; err != nil {
		t.Fatal(err)
	}

	// All writes completed: the register holds the LAST submission, at the
	// version equal to the submission count (timestamps were taken in
	// submission order with no gaps).
	res, err := reader.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != writes || string(res.Value) != fmt.Sprintf("fv%d", writes) {
		t.Fatalf("final state = %q@%d, want %q@%d", res.Value, res.Version, fmt.Sprintf("fv%d", writes), writes)
	}
}

// TestFutureResolvesStoreClosedAfterClose is the regression test for futures
// outliving their store: an operation left in flight when Store.Close runs
// must resolve with ErrStoreClosed — promptly, not by waiting out the
// caller's context against a dead network.
func TestFutureResolvesStoreClosedAfterClose(t *testing.T) {
	store, err := NewStore(Config{Servers: 4, Faulty: 1, Readers: 1, PipelineDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	reg, err := store.Register("k")
	if err != nil {
		t.Fatal(err)
	}
	reader, err := reg.Reader(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := reg.Writer().Write(ctx, []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Strand the operations: acknowledgements to the clients are held, so
	// the futures can only ever resolve through Close.
	net, err := store.Network()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		net.Hold(types.Server(i), types.Reader(1))
		net.Hold(types.Server(i), types.Writer())
	}
	rf, err := reader.ReadAsync(ctx) // no deadline: only Close can end it
	if err != nil {
		t.Fatal(err)
	}
	wf, err := reg.Writer().WriteAsync(ctx, []byte("stranded"))
	if err != nil {
		t.Fatal(err)
	}

	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := rf.Result(ctx); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("read future after Close = %v, want ErrStoreClosed", err)
	}
	if err := wf.Result(ctx); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("write future after Close = %v, want ErrStoreClosed", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("futures took %v to resolve after Close, want prompt", elapsed)
	}
	// New submissions fail fast too.
	if _, err := reader.ReadAsync(ctx); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("ReadAsync after Close = %v, want ErrStoreClosed", err)
	}
	if _, err := reg.Writer().WriteAsync(ctx, []byte("x")); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("WriteAsync after Close = %v, want ErrStoreClosed", err)
	}
}

// TestCancelledReadLeavesSiblingsRunning is the isolation regression test:
// cancelling one in-flight read's context must abort exactly that read —
// its pipelined siblings on the SAME handle keep their state and complete
// once their acknowledgements arrive.
func TestCancelledReadLeavesSiblingsRunning(t *testing.T) {
	store, err := NewStore(Config{Servers: 4, Faulty: 1, Readers: 1, PipelineDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	reg, err := store.Register("k")
	if err != nil {
		t.Fatal(err)
	}
	reader, err := reg.Reader(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := reg.Writer().Write(ctx, []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// Hold every acknowledgement so both reads stay in flight, then cancel
	// only the first.
	net, err := store.Network()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		net.Hold(types.Server(i), types.Reader(1))
	}
	ctxA, cancelA := context.WithCancel(ctx)
	defer cancelA()
	fA, err := reader.ReadAsync(ctxA)
	if err != nil {
		t.Fatal(err)
	}
	fB, err := reader.ReadAsync(ctx)
	if err != nil {
		t.Fatal(err)
	}

	cancelA()
	if _, err := fA.Result(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled read = %v, want context.Canceled", err)
	}
	select {
	case <-fB.Done():
		res, rerr := fB.Result(ctx)
		t.Fatalf("sibling read resolved while acks were held: %v %v", res, rerr)
	case <-time.After(50 * time.Millisecond):
	}

	// Releasing the held acknowledgements completes the sibling — including
	// the cancelled read's stale acks flowing past it harmlessly.
	for i := 1; i <= 4; i++ {
		net.Release(types.Server(i), types.Reader(1))
	}
	res, err := fB.Result(ctx)
	if err != nil {
		t.Fatalf("sibling read after release: %v", err)
	}
	if string(res.Value) != "v1" {
		t.Fatalf("sibling read = %q, want v1", res.Value)
	}
}

// TestPipelinedReadsAllProtocols smoke-tests the async read path end to end
// for every registered protocol, including the depth-limiter (submissions
// beyond the depth block instead of failing) and result correctness.
func TestPipelinedReadsAllProtocols(t *testing.T) {
	protocols := []Protocol{ProtocolFast, ProtocolFastByzantine, ProtocolABD, ProtocolMaxMin, ProtocolRegular}
	for _, proto := range protocols {
		t.Run(proto.String(), func(t *testing.T) {
			t.Parallel()
			cfg := Config{Servers: 4, Faulty: 1, Readers: 1, Protocol: proto, PipelineDepth: 4}
			if proto == ProtocolFastByzantine {
				cfg = Config{Servers: 7, Faulty: 1, Malicious: 1, Readers: 1, Protocol: proto, PipelineDepth: 4}
			}
			store, err := NewStore(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			reg, err := store.Register("smoke")
			if err != nil {
				t.Fatal(err)
			}
			reader, err := reg.Reader(1)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			if err := reg.Writer().Write(ctx, []byte("seed")); err != nil {
				t.Fatal(err)
			}

			const ops = 32
			futures := make([]*ReadFuture, 0, ops)
			for i := 0; i < ops; i++ {
				f, err := reader.ReadAsync(ctx)
				if err != nil {
					t.Fatalf("ReadAsync %d: %v", i, err)
				}
				futures = append(futures, f)
			}
			for i, f := range futures {
				res, err := f.Result(ctx)
				if err != nil {
					t.Fatalf("read %d: %v", i, err)
				}
				if string(res.Value) != "seed" {
					t.Fatalf("read %d = %q, want seed", i, res.Value)
				}
			}
		})
	}
}
