package fastread

import (
	"context"
	"errors"
	"testing"
	"time"

	"fastread/internal/types"
)

// TestRetryAfterSilencedServersHeal is the regression test for the
// BenchmarkSaturation hang: with enough servers unreachable the quorum can
// never form and a plain Read blocks forever, but ReadWithRetry abandons the
// stalled attempts and succeeds once the network heals.
func TestRetryAfterSilencedServersHeal(t *testing.T) {
	cluster, err := NewCluster(Config{Servers: 4, Faulty: 1, Readers: 1, Protocol: ProtocolFast})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx := testCtx(t)

	if err := cluster.Writer().Write(ctx, []byte("healed")); err != nil {
		t.Fatal(err)
	}
	r, err := cluster.Reader(1)
	if err != nil {
		t.Fatal(err)
	}

	// Silence two of four servers towards the reader: the read quorum of
	// S-t = 3 can no longer form, so every read until the heal is stranded
	// (the protocols never retransmit).
	net, err := cluster.Network()
	if err != nil {
		t.Fatal(err)
	}
	net.BlockPair(types.Reader(1), types.Server(1))
	net.BlockPair(types.Reader(1), types.Server(2))
	heal := time.AfterFunc(250*time.Millisecond, net.UnblockAll)
	defer heal.Stop()

	policy := RetryPolicy{Attempts: 10, Timeout: 100 * time.Millisecond, Backoff: 10 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}
	res, err := ReadWithRetry(ctx, r, policy)
	if err != nil {
		t.Fatalf("ReadWithRetry after heal: %v", err)
	}
	if string(res.Value) != "healed" {
		t.Fatalf("read %q, want %q", res.Value, "healed")
	}

	// Writes stranded the same way also recover.
	net.BlockPair(types.Writer(), types.Server(1))
	net.BlockPair(types.Writer(), types.Server(2))
	heal2 := time.AfterFunc(250*time.Millisecond, net.UnblockAll)
	defer heal2.Stop()
	if err := WriteWithRetry(ctx, cluster.Writer(), []byte("healed-2"), policy); err != nil {
		t.Fatalf("WriteWithRetry after heal: %v", err)
	}
	res, err = r.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Value) != "healed-2" {
		t.Fatalf("read %q, want %q", res.Value, "healed-2")
	}
}

// TestRetryExhaustionAndErrorClassification pins the helper's decision
// table: a permanently-silenced quorum exhausts the attempts with
// ErrRetriesExhausted, protocol errors are not retried, and a cancelled
// parent context wins over the attempt error.
func TestRetryExhaustionAndErrorClassification(t *testing.T) {
	cluster, err := NewCluster(Config{Servers: 4, Faulty: 1, Readers: 1, Protocol: ProtocolFast})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx := testCtx(t)
	r, err := cluster.Reader(1)
	if err != nil {
		t.Fatal(err)
	}

	net, err := cluster.Network()
	if err != nil {
		t.Fatal(err)
	}
	net.BlockPair(types.Reader(1), types.Server(1))
	net.BlockPair(types.Reader(1), types.Server(2))

	fast := RetryPolicy{Attempts: 3, Timeout: 30 * time.Millisecond, Backoff: 5 * time.Millisecond, MaxBackoff: 10 * time.Millisecond}
	start := time.Now()
	if _, err := ReadWithRetry(ctx, r, fast); !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("exhaustion took %v; the helper exists to bound this", elapsed)
	}

	// A cancelled parent context surfaces context.Canceled, not a retry.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := ReadWithRetry(cancelled, r, fast); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	net.UnblockAll()

	// Non-timeout errors pass through unretried: a nil write is a usage
	// error the writer rejects immediately.
	if err := WriteWithRetry(ctx, cluster.Writer(), nil, fast); err == nil || errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("nil write err = %v, want immediate usage error", err)
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p != DefaultRetryPolicy() {
		t.Fatalf("zero policy -> %+v, want %+v", p, DefaultRetryPolicy())
	}
	partial := RetryPolicy{Attempts: 7}.withDefaults()
	if partial.Attempts != 7 || partial.Timeout != DefaultRetryPolicy().Timeout {
		t.Fatalf("partial policy -> %+v", partial)
	}
}
