package fastread

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// The register protocols never retransmit: every message is sent exactly
// once, and an operation that loses more messages than its quorum slack
// tolerates waits forever. On a reliable transport (inmem, TCP) that cannot
// happen, but on a lossy one (UDP) — or across a partition that heals — a
// caller that simply blocks on Read or Write can hang indefinitely.
// RetryPolicy bounds that wait the way a real client would: give each
// attempt a deadline, abandon the stalled operation (freeing its pipeline
// slot; an abandoned write may still take effect, exactly like any
// interrupted write), back off, and resubmit.
//
// The helpers use wall-clock deadlines and sleeps; they must not be used
// inside a virtual-time simulation (internal/sim schedules its own timeout
// events on the logical clock instead).
type RetryPolicy struct {
	// Attempts is the maximum number of submissions, including the first
	// (zero means 4).
	Attempts int
	// Timeout is the per-attempt deadline (zero means 2s).
	Timeout time.Duration
	// Backoff is the delay before the second attempt, doubling each retry
	// (zero means 50ms).
	Backoff time.Duration
	// MaxBackoff caps the doubling (zero means 1s).
	MaxBackoff time.Duration
}

// DefaultRetryPolicy returns the policy used when a zero RetryPolicy is
// passed: 4 attempts, 2s per attempt, backoff 50ms doubling to at most 1s.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 4, Timeout: 2 * time.Second, Backoff: 50 * time.Millisecond, MaxBackoff: time.Second}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	def := DefaultRetryPolicy()
	if p.Attempts <= 0 {
		p.Attempts = def.Attempts
	}
	if p.Timeout <= 0 {
		p.Timeout = def.Timeout
	}
	if p.Backoff <= 0 {
		p.Backoff = def.Backoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = def.MaxBackoff
	}
	return p
}

// ErrRetriesExhausted is returned (wrapped) when every attempt of a retrying
// helper timed out.
var ErrRetriesExhausted = errors.New("fastread: retries exhausted")

// WriteWithRetry writes value through w, giving each attempt p.Timeout and
// resubmitting with exponential backoff when an attempt times out. Only
// per-attempt timeouts are retried; protocol errors and the parent ctx
// ending abort immediately. Resubmitting a write is safe for the register's
// semantics: the single writer issues it with a fresh, higher timestamp.
func WriteWithRetry(ctx context.Context, w Writer, value []byte, p RetryPolicy) error {
	p = p.withDefaults()
	backoff := p.Backoff
	for attempt := 1; ; attempt++ {
		attemptCtx, cancel := context.WithTimeout(ctx, p.Timeout)
		err := w.Write(attemptCtx, value)
		cancel()
		if err == nil {
			return nil
		}
		if retry, stop := retryDecision(ctx, err, attempt, p); !retry {
			return stop
		}
		if err := backoffWait(ctx, &backoff, p.MaxBackoff); err != nil {
			return err
		}
	}
}

// ReadWithRetry reads through r with the same bounded-retry discipline as
// WriteWithRetry. Abandoned attempts free their pipeline slot, so the
// helper never accumulates stranded in-flight reads.
func ReadWithRetry(ctx context.Context, r Reader, p RetryPolicy) (ReadResult, error) {
	p = p.withDefaults()
	backoff := p.Backoff
	for attempt := 1; ; attempt++ {
		attemptCtx, cancel := context.WithTimeout(ctx, p.Timeout)
		res, err := r.Read(attemptCtx)
		cancel()
		if err == nil {
			return res, nil
		}
		if retry, stop := retryDecision(ctx, err, attempt, p); !retry {
			return ReadResult{}, stop
		}
		if err := backoffWait(ctx, &backoff, p.MaxBackoff); err != nil {
			return ReadResult{}, err
		}
	}
}

// retryDecision classifies an attempt's failure: (true, nil) means try
// again, (false, err) means surface err to the caller.
func retryDecision(ctx context.Context, err error, attempt int, p RetryPolicy) (bool, error) {
	if ctx.Err() != nil {
		// The caller's context ended; its error, not the attempt's, is the
		// meaningful outcome.
		return false, ctx.Err()
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		return false, err // protocol or lifecycle error: retrying cannot help
	}
	if attempt >= p.Attempts {
		return false, fmt.Errorf("%w: %d attempts of %v each timed out", ErrRetriesExhausted, p.Attempts, p.Timeout)
	}
	return true, nil
}

// backoffWait sleeps for *backoff (doubling it, capped at max) unless ctx
// ends first.
func backoffWait(ctx context.Context, backoff *time.Duration, max time.Duration) error {
	t := time.NewTimer(*backoff)
	defer t.Stop()
	if *backoff *= 2; *backoff > max {
		*backoff = max
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
