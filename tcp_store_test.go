package fastread

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"
)

// reserveLoopbackAddr picks a free loopback port by listening and closing.
func reserveLoopbackAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	return addr, l.Close()
}

// TestTCPStoreEndToEnd drives NewStore over the TCP backend on loopback for
// every registered protocol: every server, the writer and the reader is a
// real socket endpoint with an ephemeral port, and the protocol code is
// byte-for-byte what the in-memory deployments run. It checks read-your-write
// behaviour and timestamp monotonicity over real sockets, across two
// registers, then verifies a clean shutdown leaks no goroutines.
func TestTCPStoreEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	protocols := []Protocol{ProtocolFast, ProtocolFastByzantine, ProtocolABD, ProtocolMaxMin, ProtocolRegular}
	for _, proto := range protocols {
		// NOT parallel: each run measures goroutine leakage against a global
		// baseline.
		t.Run(proto.String(), func(t *testing.T) {
			baseline := runtime.NumGoroutine()

			cfg := Config{Servers: 4, Faulty: 1, Readers: 1, Protocol: proto, Transport: TCP(nil)}
			store, err := NewStore(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()

			for _, key := range []string{"", "user/42"} {
				reg, err := store.Register(key)
				if err != nil {
					t.Fatal(err)
				}
				reader, err := reg.Reader(1)
				if err != nil {
					t.Fatal(err)
				}
				var lastVersion int64
				for i := 1; i <= 5; i++ {
					want := fmt.Sprintf("%s/payload-%d", key, i)
					if err := reg.Writer().Write(ctx, []byte(want)); err != nil {
						t.Fatalf("write %d on %q: %v", i, key, err)
					}
					// SWMR with no concurrent write: a read that starts after
					// the write completed must return the written value, on
					// every protocol (even the regular register).
					res, err := reader.Read(ctx)
					if err != nil {
						t.Fatalf("read %d on %q: %v", i, key, err)
					}
					if string(res.Value) != want {
						t.Fatalf("read %d on %q = %q, want %q", i, key, res.Value, want)
					}
					if res.Version < lastVersion {
						t.Fatalf("timestamp went backwards on %q: %d after %d", key, res.Version, lastVersion)
					}
					lastVersion = res.Version
				}
			}

			stats := store.Stats()
			if stats.Writes != 10 || stats.Reads != 10 {
				t.Errorf("stats = %d writes / %d reads, want 10/10", stats.Writes, stats.Reads)
			}
			if stats.DeliveredMsgs == 0 {
				t.Error("TCP transport delivered no messages")
			}

			if err := store.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			waitForGoroutines(t, baseline)
		})
	}
}

// waitForGoroutines fails the test if the goroutine count does not return to
// (about) the baseline: sockets, executors, demux pumps and flushers must all
// terminate on Close.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		// A small slack absorbs runtime-internal goroutines (e.g. finalizer
		// wakeups) that come and go independently of the store.
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after Close: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestTCPStoreFaultInjectionUnsupported verifies the capability seam: the
// TCP backend has no adversary, so the in-memory fault-injection surface
// degrades to a typed ErrUnsupported instead of pretending to work.
func TestTCPStoreFaultInjectionUnsupported(t *testing.T) {
	store, err := NewStore(Config{Servers: 3, Faulty: 1, Readers: 1, Protocol: ProtocolABD, Transport: TCP(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	if err := store.CrashServer(1); !errors.Is(err, ErrUnsupported) {
		t.Errorf("CrashServer on TCP = %v, want ErrUnsupported", err)
	}
	// Index validation still applies before the capability check.
	if err := store.CrashServer(99); !errors.Is(err, ErrUnknownServer) {
		t.Errorf("CrashServer(99) = %v, want ErrUnknownServer", err)
	}
	if _, err := store.Network(); !errors.Is(err, ErrUnsupported) {
		t.Errorf("Network on TCP = %v, want ErrUnsupported", err)
	}
}

// TestTCPStoreStaticBook pins every process to a pre-assigned loopback port
// through the public address book, the way a distributed deployment would be
// configured, and checks the deployment still serves operations.
func TestTCPStoreStaticBook(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	// Reserve ports by listening and closing; the gap is benign on loopback.
	book := map[string]string{}
	ids := []string{"s1", "s2", "s3", "w", "r1"}
	for _, id := range ids {
		addr, err := reserveLoopbackAddr()
		if err != nil {
			t.Fatal(err)
		}
		book[id] = addr
	}
	store, err := NewStore(Config{Servers: 3, Faulty: 1, Readers: 1, Protocol: ProtocolABD, Transport: TCP(book)})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	reg, err := store.Register("pinned")
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Writer().Write(ctx, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	reader, _ := reg.Reader(1)
	res, err := reader.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Value) != "v1" {
		t.Fatalf("read %q, want %q", res.Value, "v1")
	}
}

// TestTCPBookRejectsBadIdentity verifies book validation happens up front.
func TestTCPBookRejectsBadIdentity(t *testing.T) {
	_, err := NewStore(Config{Servers: 3, Faulty: 1, Readers: 1, Transport: TCP(map[string]string{"bogus": "127.0.0.1:1"})})
	if err == nil {
		t.Fatal("NewStore accepted a malformed TCP address book")
	}
}

// TestTCPPipelinedFramesPerOp is the batching acceptance test on real
// sockets: with a deep read pipeline, requests and coalesced
// acknowledgements ride shared batch frames, so the deployment-wide frame
// count per operation must drop BELOW one — against ~8 frames per serial
// read on this topology (one request and one ack frame per server).
func TestTCPPipelinedFramesPerOp(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	const depth = 64
	store, err := NewStore(Config{Servers: 4, Faulty: 1, Readers: 1, Protocol: ProtocolFast, PipelineDepth: depth, Transport: TCP(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	reg, err := store.Register("frames")
	if err != nil {
		t.Fatal(err)
	}
	reader, err := reg.Reader(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := reg.Writer().Write(ctx, []byte("seed")); err != nil {
		t.Fatal(err)
	}

	const ops = 4000
	window := make([]*ReadFuture, 0, depth)
	for i := 0; i < ops; i++ {
		if len(window) == depth {
			if _, err := window[0].Result(ctx); err != nil {
				t.Fatalf("read %d: %v", i-depth, err)
			}
			window = window[1:]
		}
		f, err := reader.ReadAsync(ctx)
		if err != nil {
			t.Fatalf("ReadAsync %d: %v", i, err)
		}
		window = append(window, f)
	}
	for _, f := range window {
		if _, err := f.Result(ctx); err != nil {
			t.Fatal(err)
		}
	}

	stats := store.Stats()
	totalOps := stats.Reads + stats.Writes
	if totalOps < ops {
		t.Fatalf("only %d ops completed", totalOps)
	}
	framesPerOp := float64(stats.FramesDelivered) / float64(totalOps)
	t.Logf("frames=%d msgs=%d ops=%d frames/op=%.3f msgs/frame=%.1f",
		stats.FramesDelivered, stats.DeliveredMsgs, totalOps,
		framesPerOp, float64(stats.DeliveredMsgs)/float64(stats.FramesDelivered))
	if framesPerOp >= 1 {
		t.Errorf("frames/op = %.3f, want < 1 (batching not amortising)", framesPerOp)
	}
}

// TestHandlesFailFastAfterClose is the regression test for operations on
// handles outliving their store: they must fail immediately with
// ErrStoreClosed rather than waiting out the caller's context against a
// network that can never answer.
func TestHandlesFailFastAfterClose(t *testing.T) {
	store, err := NewStore(Config{Servers: 4, Faulty: 1, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := store.Register("k")
	if err != nil {
		t.Fatal(err)
	}
	writer := reg.Writer()
	reader, err := reg.Reader(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := writer.Write(ctx, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// No deadline on the context: before the fail-fast check these calls
	// hung forever.
	start := time.Now()
	if err := writer.Write(ctx, []byte("after")); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("Write after Close = %v, want ErrStoreClosed", err)
	}
	if _, err := reader.Read(ctx); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("Read after Close = %v, want ErrStoreClosed", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("post-close operations took %v, want immediate failure", elapsed)
	}
	if _, err := store.Register("other"); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("Register after Close = %v, want ErrStoreClosed", err)
	}
}
