// Command regclient is the client-side companion of cmd/regserver: it acts
// as the deployment's writer or as one of its readers over TCP.
//
//	regclient -id w  -book "$BOOK" -S 4 -t 1 -R 1 write "hello"
//	regclient -id r1 -book "$BOOK" -S 4 -t 1 -R 1 read
//	regclient -id r1 -book "$BOOK" -S 4 -t 1 -R 1 bench -ops 1000
//
// One server deployment multiplexes many named registers; -key selects which
// register to operate on (default: the deployment's default register), and
// the bench subcommand takes -keys N to spread its operations round-robin
// over N registers derived from the -key prefix:
//
//	regclient -id w  -book "$BOOK" -key user/42 write "hello"
//	regclient -id r1 -book "$BOOK" -key user/42 read
//	regclient -id w  -book "$BOOK" -key bench- -keys 16 bench -ops 1000
//
// The deployment parameters (-S, -t, -b, -R) must match what the servers were
// started with; the exact fast-read bound is checked locally before any
// operation is attempted.
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fastread/internal/core"
	"fastread/internal/protoutil"
	"fastread/internal/quorum"
	"fastread/internal/sig"
	"fastread/internal/stats"
	"fastread/internal/transport"
	"fastread/internal/transport/tcpnet"
	"fastread/internal/types"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "regclient:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("regclient", flag.ContinueOnError)
	var (
		idFlag    = fs.String("id", "r1", "client identity: w for the writer, r1..rR for readers")
		bookFlag  = fs.String("book", "", "address book: comma-separated id=host:port pairs")
		servers   = fs.Int("S", 4, "number of servers")
		faulty    = fs.Int("t", 1, "maximum faulty servers")
		malicious = fs.Int("b", 0, "maximum malicious servers")
		readers   = fs.Int("R", 1, "number of readers")
		byz       = fs.Bool("byz", false, "use the arbitrary-failure variant")
		keyHex    = fs.String("writer-key", "", "hex-encoded writer private seed (Byzantine writer) or public key (Byzantine reader)")
		timeout   = fs.Duration("timeout", 5*time.Second, "per-operation timeout")
		ops       = fs.Int("ops", 100, "operation count for the bench subcommand")
		key       = fs.String("key", "", "register key to operate on (empty = default register)")
		keysN     = fs.Int("keys", 1, "bench only: spread operations over N registers named <key>0..<key>N-1")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: regclient [flags] read | write <value> | bench")
	}
	command := fs.Arg(0)
	if *keysN < 1 {
		return fmt.Errorf("-keys must be >= 1, got %d", *keysN)
	}

	keys := []string{*key}
	if command == "bench" && *keysN > 1 {
		keys = make([]string, *keysN)
		for i := range keys {
			keys[i] = fmt.Sprintf("%s%d", *key, i)
		}
	}

	id, err := types.ParseProcessID(*idFlag)
	if err != nil {
		return err
	}
	book, err := parseBook(*bookFlag)
	if err != nil {
		return err
	}
	cfg := quorum.Config{Servers: *servers, Faulty: *faulty, Malicious: *malicious, Readers: *readers}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if !cfg.FastReadPossible() {
		return fmt.Errorf("configuration %v does not admit fast reads (max readers = %d)",
			cfg, quorum.MaxFastReaders(*servers, *faulty, *malicious))
	}

	node, err := tcpnet.Listen(tcpnet.Config{Self: id, Book: book})
	if err != nil {
		return err
	}
	defer node.Close()

	// The physical node is demultiplexed by register key so one process can
	// drive many registers over a single TCP identity, exactly as the
	// in-memory Store does.
	demux := transport.NewDemux(node, protoutil.WireKeyFunc, 0)

	ctx := context.Background()
	switch {
	case id.Role == types.RoleWriter:
		writerCfg := core.WriterConfig{Quorum: cfg, Byzantine: *byz}
		if *byz {
			signer, err := signerFromHex(*keyHex)
			if err != nil {
				return err
			}
			writerCfg.Signer = signer
		}
		writers := make([]*core.Writer, len(keys))
		for i, k := range keys {
			kCfg := writerCfg
			kCfg.Key = k
			w, err := core.NewWriter(kCfg, demux.Route(k))
			if err != nil {
				return err
			}
			writers[i] = w
		}
		return runWriter(ctx, writers, command, fs.Args(), *timeout, *ops)
	case id.Role == types.RoleReader:
		readerCfg := core.ReaderConfig{Quorum: cfg, Byzantine: *byz}
		if *byz {
			verifier, err := verifierFromHex(*keyHex)
			if err != nil {
				return err
			}
			readerCfg.Verifier = verifier
		}
		readers := make([]*core.Reader, len(keys))
		for i, k := range keys {
			kCfg := readerCfg
			kCfg.Key = k
			r, err := core.NewReader(kCfg, demux.Route(k))
			if err != nil {
				return err
			}
			readers[i] = r
		}
		return runReader(ctx, readers, command, *timeout, *ops)
	default:
		return fmt.Errorf("-id must be the writer (w) or a reader (r1..rR)")
	}
}

// runWriter executes the writer-side subcommands. The bench subcommand
// round-robins its operations over every per-key writer.
func runWriter(ctx context.Context, writers []*core.Writer, command string, args []string, timeout time.Duration, ops int) error {
	switch command {
	case "write":
		if len(args) < 2 {
			return fmt.Errorf("usage: regclient ... write <value>")
		}
		opCtx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		start := time.Now()
		if err := writers[0].Write(opCtx, types.Value(args[1])); err != nil {
			return err
		}
		fmt.Printf("ok in %v (one round-trip)\n", time.Since(start).Round(time.Microsecond))
		return nil
	case "bench":
		recorder := stats.NewLatencyRecorder(ops)
		for i := 0; i < ops; i++ {
			opCtx, cancel := context.WithTimeout(ctx, timeout)
			start := time.Now()
			err := writers[i%len(writers)].Write(opCtx, types.Value(fmt.Sprintf("bench-%d", i)))
			cancel()
			if err != nil {
				return fmt.Errorf("write %d: %w", i, err)
			}
			recorder.Record(time.Since(start))
		}
		fmt.Printf("writes over %d key(s): %s\n", len(writers), recorder.Summary())
		return nil
	default:
		return fmt.Errorf("the writer supports: write <value> | bench")
	}
}

// runReader executes the reader-side subcommands. The bench subcommand
// round-robins its operations over every per-key reader.
func runReader(ctx context.Context, readers []*core.Reader, command string, timeout time.Duration, ops int) error {
	switch command {
	case "read":
		opCtx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		start := time.Now()
		res, err := readers[0].Read(opCtx)
		if err != nil {
			return err
		}
		fmt.Printf("value=%s version=%d round-trips=%d latency=%v\n",
			res.Value, res.Timestamp, res.RoundTrips, time.Since(start).Round(time.Microsecond))
		return nil
	case "bench":
		recorder := stats.NewLatencyRecorder(ops)
		for i := 0; i < ops; i++ {
			opCtx, cancel := context.WithTimeout(ctx, timeout)
			start := time.Now()
			_, err := readers[i%len(readers)].Read(opCtx)
			cancel()
			if err != nil {
				return fmt.Errorf("read %d: %w", i, err)
			}
			recorder.Record(time.Since(start))
		}
		fmt.Printf("reads over %d key(s): %s\n", len(readers), recorder.Summary())
		return nil
	default:
		return fmt.Errorf("readers support: read | bench")
	}
}

// parseBook parses the id=addr,... address book flag.
func parseBook(spec string) (tcpnet.AddressBook, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("an address book is required (-book id=host:port,...)")
	}
	book := make(tcpnet.AddressBook)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.SplitN(entry, "=", 2)
		if len(parts) != 2 || parts[1] == "" {
			return nil, fmt.Errorf("malformed address book entry %q", entry)
		}
		id, err := types.ParseProcessID(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, err
		}
		book[id] = strings.TrimSpace(parts[1])
	}
	return book, nil
}

// signerFromHex rebuilds the writer's signer from a hex-encoded ed25519 seed
// produced by `regclient keygen` (not implemented here: any 32-byte seed).
func signerFromHex(keyHex string) (*sig.Signer, error) {
	if keyHex == "" {
		return nil, fmt.Errorf("the Byzantine writer requires -writer-key (hex seed)")
	}
	// The Signer API is deliberately narrow; for the CLI we derive a key pair
	// from the seed bytes via the deterministic reader in sig.NewKeyPair.
	raw, err := hex.DecodeString(strings.TrimPrefix(keyHex, "0x"))
	if err != nil {
		return nil, err
	}
	kp, err := sig.NewKeyPair(seedReader(raw))
	if err != nil {
		return nil, err
	}
	return kp.Signer, nil
}

// verifierFromHex rebuilds a verifier from a hex-encoded public key.
func verifierFromHex(keyHex string) (sig.Verifier, error) {
	if keyHex == "" {
		return sig.Verifier{}, fmt.Errorf("the Byzantine reader requires -writer-key (hex public key)")
	}
	raw, err := hex.DecodeString(strings.TrimPrefix(keyHex, "0x"))
	if err != nil {
		return sig.Verifier{}, err
	}
	return sig.VerifierFromPublicKey(raw)
}

// seedReader turns a byte slice into an io.Reader that repeats it, giving
// ed25519.GenerateKey the 32 bytes of entropy it needs deterministically.
type seedReader []byte

func (s seedReader) Read(p []byte) (int, error) {
	if len(s) == 0 {
		return 0, fmt.Errorf("empty seed")
	}
	for i := range p {
		p[i] = s[i%len(s)]
	}
	return len(p), nil
}
