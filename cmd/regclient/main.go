// Command regclient is the client-side companion of cmd/regserver: it acts
// as the deployment's writer or as one of its readers over real sockets —
// TCP by default, or the batched-syscall UDP transport with -transport udp
// (which must match the servers). Like the server it resolves the register
// implementation through the protocol driver registry, so -protocol drives
// any of the repository's protocols against a matching server deployment:
//
//	regclient -id w  -book "$BOOK" -S 4 -t 1 -R 1 write "hello"
//	regclient -id r1 -book "$BOOK" -S 4 -t 1 -R 1 read
//	regclient -id r1 -book "$BOOK" -S 4 -t 1 -R 1 -protocol abd bench -ops 1000
//
// One server deployment multiplexes many named registers; -key selects which
// register to operate on (default: the deployment's default register), and
// the bench subcommand takes -keys N to spread its operations round-robin
// over N registers derived from the -key prefix:
//
//	regclient -id w  -book "$BOOK" -key user/42 write "hello"
//	regclient -id r1 -book "$BOOK" -key user/42 read
//	regclient -id w  -book "$BOOK" -key bench- -keys 16 bench -ops 1000
//
// The bench subcommand reports throughput plus the latency distribution
// (mean, p50, p95, p99, max). With -pipeline N it keeps up to N operations
// in flight through the async API (requests and acknowledgements then ride
// batched wire frames), reporting the same distribution plus an in-flight
// depth histogram:
//
//	regclient -id r1 -book "$BOOK" -pipeline 16 bench -ops 10000
//
// Where bench is closed-loop (each worker waits for its completions, so the
// offered load tracks the deployment's speed), the loadgen subcommand is
// open-loop: it schedules arrivals at -rate ops/sec on a clock and measures
// each operation's latency from its intended arrival — coordinated-omission-
// safe tail latencies. -rates sweeps a list of rates and reports the knee;
// -admission sheds at-depth submissions with ErrOverloaded instead of
// blocking. See loadgen.go:
//
//	regclient -id w -book "$BOOK" -keys 8 loadgen -rate 2000 -duration 10s
//	regclient -id w -book "$BOOK" -keys 8 loadgen -rates 500,1000,2000 -admission 1ms
//
// Both bench and loadgen echo their active configuration as the first output
// line, and both accept their flags before or after the subcommand word.
//
// The deployment parameters (-S, -t, -b, -R) and -protocol must match what
// the servers were started with; the protocol's deployment bound (the fast
// protocols' reader bound, the majority protocols' t < S/2) is checked
// locally before any operation is attempted.
//
// A partitioned deployment (see internal/topology) replaces -book with
// -groups topology.json: the client builds the same consistent-hash ring as
// every server, resolves each key's owning replica group, and binds one
// socket per group it actually talks to, using that group's member book and
// quorum parameters (give the client identity a distinct port in each
// group's members — one socket cannot serve two groups). The route
// subcommand prints the placement without touching the network:
//
//	regclient -groups topo.json -key user/42 route
//	regclient -groups topo.json -key bench- -keys 16 route
//	regclient -id w  -groups topo.json -key user/42 write "hello"
//	regclient -id r1 -groups topo.json -key bench- -keys 64 bench -ops 5000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fastread/internal/driver"
	"fastread/internal/protoutil"
	"fastread/internal/quorum"
	"fastread/internal/stats"
	"fastread/internal/topology"
	"fastread/internal/transport"
	"fastread/internal/transport/tcpnet"
	"fastread/internal/transport/udpnet"
	"fastread/internal/types"

	// Register every protocol driver this binary can drive.
	_ "fastread/internal/abd"
	_ "fastread/internal/core"
	_ "fastread/internal/maxmin"
	_ "fastread/internal/regular"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "regclient:", err)
		os.Exit(1)
	}
}

// cliConfig holds every parsed flag plus the subcommand and its operands, so
// flag handling (and the config echo built from it) is testable apart from
// the network setup in run.
type cliConfig struct {
	id        string
	book      string
	groups    string
	protocol  string
	servers   int
	faulty    int
	malicious int
	readers   int
	byz       bool
	keyHex    string
	timeout   time.Duration
	ops       int
	key       string
	keysN     int
	pipeline  int
	transport string

	// loadgen flags (see loadgen.go).
	rate      float64
	rates     string
	duration  time.Duration
	arrival   string
	zipfS     float64
	admission time.Duration
	seed      int64
	kneeP99   time.Duration

	command string
	args    []string
}

// parseCLI parses the regclient command line. Flags may appear before or
// after the subcommand (`-ops 1000 bench` and `bench -ops 1000` are the same
// invocation): the remainder after the subcommand is parsed through the same
// flag set, leaving args holding the subcommand's operands.
func parseCLI(args []string) (*cliConfig, error) {
	c := &cliConfig{}
	fs := flag.NewFlagSet("regclient", flag.ContinueOnError)
	fs.StringVar(&c.id, "id", "r1", "client identity: w for the writer, r1..rR for readers")
	fs.StringVar(&c.book, "book", "", "address book: comma-separated id=host:port pairs")
	fs.StringVar(&c.groups, "groups", "", "topology file (JSON) describing a partitioned deployment (replaces -book)")
	fs.StringVar(&c.protocol, "protocol", "fast", "register protocol: "+strings.Join(driver.Names(), " | "))
	fs.IntVar(&c.servers, "S", 4, "number of servers")
	fs.IntVar(&c.faulty, "t", 1, "maximum faulty servers")
	fs.IntVar(&c.malicious, "b", 0, "maximum malicious servers")
	fs.IntVar(&c.readers, "R", 1, "number of readers")
	fs.BoolVar(&c.byz, "byz", false, "deprecated: alias for -protocol fast-byz")
	fs.StringVar(&c.keyHex, "writer-key", "", "hex-encoded writer private seed (signing writer) or public key (verifying reader)")
	fs.DurationVar(&c.timeout, "timeout", 5*time.Second, "per-operation timeout")
	fs.IntVar(&c.ops, "ops", 100, "operation count for the bench subcommand")
	fs.StringVar(&c.key, "key", "", "register key to operate on (empty = default register)")
	fs.IntVar(&c.keysN, "keys", 1, "bench/loadgen only: spread operations over N registers named <key>0..<key>N-1")
	fs.IntVar(&c.pipeline, "pipeline", 1, "bench/loadgen only: operations kept in flight per handle (1 = serial)")
	fs.StringVar(&c.transport, "transport", "tcp", "socket transport: tcp | udp (must match the servers)")
	fs.Float64Var(&c.rate, "rate", 1000, "loadgen only: offered load in ops/sec")
	fs.StringVar(&c.rates, "rates", "", "loadgen only: comma-separated ops/sec sweep (overrides -rate); prints one curve point per rate plus the knee")
	fs.DurationVar(&c.duration, "duration", 10*time.Second, "loadgen only: arrival window (per rate step when sweeping)")
	fs.StringVar(&c.arrival, "arrival", "poisson", "loadgen only: arrival process: poisson | fixed")
	fs.Float64Var(&c.zipfS, "zipf", 0, "loadgen only: zipfian key-popularity exponent over -keys (0 = uniform)")
	fs.DurationVar(&c.admission, "admission", 0, "loadgen only: admission budget; at-depth submissions shed with ErrOverloaded after waiting this long (0 = block)")
	fs.Int64Var(&c.seed, "seed", 1, "loadgen only: RNG seed for arrival times and key choice")
	fs.DurationVar(&c.kneeP99, "knee-p99", 50*time.Millisecond, "loadgen sweep only: p99 threshold for the knee finder")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() < 1 {
		return nil, fmt.Errorf("usage: regclient [flags] read | write <value> | bench | loadgen | route [key ...]")
	}
	c.command = fs.Arg(0)
	// Flags may also follow the subcommand (`bench -ops 1000 -pipeline 16`),
	// as the examples above show: parse the remainder through the same set,
	// leaving fs.Args() holding the subcommand's operands.
	if err := fs.Parse(fs.Args()[1:]); err != nil {
		return nil, err
	}
	c.args = fs.Args()
	if c.keysN < 1 {
		return nil, fmt.Errorf("-keys must be >= 1, got %d", c.keysN)
	}
	if c.pipeline < 1 {
		return nil, fmt.Errorf("-pipeline must be >= 1, got %d", c.pipeline)
	}
	if c.arrival != "poisson" && c.arrival != "fixed" {
		return nil, fmt.Errorf("-arrival must be poisson or fixed, got %q", c.arrival)
	}
	if c.byz {
		switch c.protocol {
		case "fast", "fast-byz":
			c.protocol = "fast-byz"
		default:
			return nil, fmt.Errorf("contradictory flags: -byz with -protocol %s", c.protocol)
		}
	}
	return c, nil
}

// configLine is the one-line active-configuration echo printed before a
// bench or loadgen run, so a result in a terminal scrollback or a CI log is
// never separated from the parameters that produced it.
func (c *cliConfig) configLine() string {
	line := fmt.Sprintf("config: cmd=%s id=%s protocol=%s transport=%s S=%d t=%d b=%d R=%d key=%q keys=%d pipeline=%d timeout=%v",
		c.command, c.id, c.protocol, c.transport, c.servers, c.faulty, c.malicious, c.readers,
		c.key, c.keysN, c.pipeline, c.timeout)
	if c.command == "loadgen" {
		rates := c.rates
		if rates == "" {
			rates = fmt.Sprintf("%g", c.rate)
		}
		line += fmt.Sprintf(" rates=%s duration=%v arrival=%s zipf=%g admission=%v seed=%d knee-p99=%v",
			rates, c.duration, c.arrival, c.zipfS, c.admission, c.seed, c.kneeP99)
	}
	return line
}

func run(args []string) error {
	c, err := parseCLI(args)
	if err != nil {
		return err
	}
	command := c.command
	drv, ok := driver.Lookup(c.protocol)
	if !ok {
		return fmt.Errorf("unknown -protocol %q (have: %s)", c.protocol, strings.Join(driver.Names(), ", "))
	}

	keys := []string{c.key}
	if (command == "bench" || command == "loadgen" || command == "route") && c.keysN > 1 {
		keys = make([]string, c.keysN)
		for i := range keys {
			keys[i] = fmt.Sprintf("%s%d", c.key, i)
		}
	}

	// A topology file turns the client into a router: every key is placed on
	// the deployment-wide consistent-hash ring before any handle is built,
	// and only the groups that actually own one of this run's keys get a
	// socket.
	var (
		topo topology.Topology
		ring *topology.Ring
	)
	if c.groups != "" {
		if c.book != "" {
			return fmt.Errorf("-groups and -book are mutually exclusive: the topology carries each group's address book")
		}
		if topo, err = topology.Load(c.groups); err != nil {
			return err
		}
		if ring, err = topo.Ring(); err != nil {
			return err
		}
	}
	groupOf := func(k string) int {
		if ring == nil {
			return 0
		}
		return ring.Lookup(k)
	}

	if command == "route" {
		if ring == nil {
			return fmt.Errorf("route requires -groups: placement is defined by the topology's ring")
		}
		targets := c.args
		if len(targets) == 0 {
			targets = keys
		}
		for _, k := range targets {
			label := k
			if label == "" {
				label = "(default register)"
			}
			fmt.Printf("%s\t%s\n", label, topo.Groups[ring.Lookup(k)].Name)
		}
		return nil
	}

	id, err := types.ParseProcessID(c.id)
	if err != nil {
		return err
	}
	qcfg := quorum.Config{Servers: c.servers, Faulty: c.faulty, Malicious: c.malicious, Readers: c.readers}
	if err := qcfg.Validate(); err != nil {
		return err
	}
	if err := drv.Validate(qcfg); err != nil {
		return err
	}
	if command == "bench" || command == "loadgen" {
		fmt.Println(c.configLine())
	}

	// One socket + demux per replica group this run touches, opened lazily.
	// Groups are disjoint deployments with their own address books and quorum
	// shapes, so each connection carries its own quorum config for the
	// handles routed through it.
	type groupConn struct {
		qcfg  quorum.Config
		demux *transport.Demux
	}
	conns := make(map[int]*groupConn)
	var nodes []transport.Node
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	connFor := func(gi int) (*groupConn, error) {
		if c, ok := conns[gi]; ok {
			return c, nil
		}
		gq := qcfg
		var book tcpnet.AddressBook
		var err error
		if ring != nil {
			g := topo.Groups[gi]
			if g.Servers != 0 {
				gq.Servers, gq.Faulty, gq.Malicious = g.Servers, g.Faulty, g.Malicious
			}
			if book, err = bookFromMembers(g.Members); err != nil {
				return nil, fmt.Errorf("group %q: %w", g.Name, err)
			}
			if err = gq.Validate(); err != nil {
				return nil, fmt.Errorf("group %q: %w", g.Name, err)
			}
			if err = drv.Validate(gq); err != nil {
				return nil, fmt.Errorf("group %q: %w", g.Name, err)
			}
		} else if book, err = parseBook(c.book); err != nil {
			return nil, err
		}
		node, err := listenNode(c.transport, id, book)
		if err != nil {
			if ring != nil {
				return nil, fmt.Errorf("group %q: %w", topo.Groups[gi].Name, err)
			}
			return nil, err
		}
		nodes = append(nodes, node)
		// The physical node is demultiplexed by register key so one process
		// can drive many registers over a single socket identity, exactly as
		// the in-memory Store does.
		c := &groupConn{qcfg: gq, demux: transport.NewDemux(node, protoutil.WireKeyFunc, 0)}
		conns[gi] = c
		return c, nil
	}

	clientCfg := driver.ClientConfig{Quorum: qcfg, Depth: c.pipeline}
	if drv.NeedsSignatures {
		switch id.Role {
		case types.RoleWriter:
			signer, err := signerFromHex(c.keyHex)
			if err != nil {
				return err
			}
			clientCfg.Signer = signer
		case types.RoleReader:
			verifier, err := verifierFromHex(c.keyHex)
			if err != nil {
				return err
			}
			clientCfg.Verifier = verifier
		}
	}

	ctx := context.Background()
	switch id.Role {
	case types.RoleWriter:
		writers := make([]driver.Writer, len(keys))
		for i, k := range keys {
			gc, err := connFor(groupOf(k))
			if err != nil {
				return err
			}
			kCfg := clientCfg
			kCfg.Quorum = gc.qcfg
			kCfg.Key = k
			w, err := drv.NewWriter(kCfg, gc.demux.Route(k))
			if err != nil {
				return err
			}
			writers[i] = w
		}
		if command == "loadgen" {
			return runLoadgen(ctx, c, writers, nil)
		}
		return runWriter(ctx, writers, command, c.args, c.timeout, c.ops, c.pipeline)
	case types.RoleReader:
		readers := make([]driver.Reader, len(keys))
		for i, k := range keys {
			gc, err := connFor(groupOf(k))
			if err != nil {
				return err
			}
			kCfg := clientCfg
			kCfg.Quorum = gc.qcfg
			kCfg.Key = k
			r, err := drv.NewReader(kCfg, gc.demux.Route(k))
			if err != nil {
				return err
			}
			readers[i] = r
		}
		if command == "loadgen" {
			return runLoadgen(ctx, c, nil, readers)
		}
		return runReader(ctx, readers, command, c.timeout, c.ops, c.pipeline)
	default:
		return fmt.Errorf("-id must be the writer (w) or a reader (r1..rR)")
	}
}

// listenNode binds the client's socket on the chosen transport. Clients
// always listen on the address-book entry for their identity, so a plain
// book swap switches an entire deployment between TCP and UDP.
func listenNode(kind string, id types.ProcessID, book tcpnet.AddressBook) (transport.Node, error) {
	switch kind {
	case "tcp":
		return tcpnet.Listen(tcpnet.Config{Self: id, Book: book})
	case "udp":
		ub := make(udpnet.AddressBook, len(book))
		for k, v := range book {
			ub[k] = v
		}
		return udpnet.Listen(udpnet.Config{Self: id, Book: ub})
	default:
		return nil, fmt.Errorf("unknown -transport %q (want tcp or udp)", kind)
	}
}

// runWriter executes the writer-side subcommands. The bench subcommand
// round-robins its operations over every per-key writer, keeping up to
// depth writes in flight.
func runWriter(ctx context.Context, writers []driver.Writer, command string, args []string, timeout time.Duration, ops, depth int) error {
	switch command {
	case "write":
		if len(args) < 1 {
			return fmt.Errorf("usage: regclient ... write <value>")
		}
		opCtx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		start := time.Now()
		if err := writers[0].Write(opCtx, types.Value(args[0])); err != nil {
			return err
		}
		fmt.Printf("ok in %v\n", time.Since(start).Round(time.Microsecond))
		return nil
	case "bench":
		benchStart := time.Now()
		recorder, inflight, err := pipelinedBench(ctx, ops, depth, timeout,
			func(opCtx context.Context, i int) (func(context.Context) error, error) {
				f, err := writers[i%len(writers)].WriteAsync(opCtx, types.Value(fmt.Sprintf("bench-%d", i)))
				if err != nil {
					return nil, err
				}
				return f.Result, nil
			})
		if err != nil {
			return err
		}
		printBench("writes", len(writers), recorder, time.Since(benchStart))
		printPipeline(depth, inflight)
		return nil
	default:
		return fmt.Errorf("the writer supports: write <value> | bench | loadgen")
	}
}

// runReader executes the reader-side subcommands. The bench subcommand
// round-robins its operations over every per-key reader, keeping up to
// depth reads in flight.
func runReader(ctx context.Context, readers []driver.Reader, command string, timeout time.Duration, ops, depth int) error {
	switch command {
	case "read":
		opCtx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		start := time.Now()
		res, err := readers[0].Read(opCtx)
		if err != nil {
			return err
		}
		fmt.Printf("value=%s version=%d round-trips=%d latency=%v\n",
			res.Value, res.Timestamp, res.RoundTrips, time.Since(start).Round(time.Microsecond))
		return nil
	case "bench":
		benchStart := time.Now()
		recorder, inflight, err := pipelinedBench(ctx, ops, depth, timeout,
			func(opCtx context.Context, i int) (func(context.Context) error, error) {
				f, err := readers[i%len(readers)].ReadAsync(opCtx)
				if err != nil {
					return nil, err
				}
				return func(c context.Context) error {
					_, rerr := f.Result(c)
					return rerr
				}, nil
			})
		if err != nil {
			return err
		}
		printBench("reads", len(readers), recorder, time.Since(benchStart))
		printPipeline(depth, inflight)
		return nil
	default:
		return fmt.Errorf("readers support: read | bench | loadgen")
	}
}

// pipelinedBench drives ops operations with up to depth in flight: submit
// returns a wait function resolving operation i, and the window harvests the
// oldest operation whenever it is full. Latency is measured submit-to-
// resolve (a submission blocked by a full per-handle pipeline counts against
// the operation, exactly what a closed-loop caller would see); the in-flight
// histogram samples the window occupancy at each submission.
func pipelinedBench(ctx context.Context, ops, depth int, timeout time.Duration,
	submit func(opCtx context.Context, i int) (func(context.Context) error, error)) (*stats.LatencyRecorder, *stats.IntHistogram, error) {

	recorder := stats.NewLatencyRecorder(ops)
	inflight := &stats.IntHistogram{}
	type pending struct {
		wait   func(context.Context) error
		cancel context.CancelFunc
		start  time.Time
		idx    int
	}
	window := make([]pending, 0, depth)
	harvest := func(p pending) error {
		// The operation's own context carries the timeout; the wait itself
		// needs no second deadline.
		err := p.wait(context.Background())
		p.cancel()
		if err != nil {
			return fmt.Errorf("op %d: %w", p.idx, err)
		}
		recorder.Record(time.Since(p.start))
		return nil
	}
	for i := 0; i < ops; i++ {
		if len(window) == depth {
			if err := harvest(window[0]); err != nil {
				return nil, nil, err
			}
			window = window[1:]
		}
		inflight.Observe(len(window))
		opCtx, cancel := context.WithTimeout(ctx, timeout)
		start := time.Now()
		wait, err := submit(opCtx, i)
		if err != nil {
			cancel()
			return nil, nil, fmt.Errorf("submit op %d: %w", i, err)
		}
		window = append(window, pending{wait: wait, cancel: cancel, start: start, idx: i})
	}
	for _, p := range window {
		if err := harvest(p); err != nil {
			return nil, nil, err
		}
	}
	return recorder, inflight, nil
}

// printPipeline reports the pipelining shape of a bench run.
func printPipeline(depth int, inflight *stats.IntHistogram) {
	fmt.Printf("pipeline: depth=%d in-flight at submit: mean=%.1f max=%d histogram: %s\n",
		depth, inflight.Mean(), inflight.Max(), inflight)
}

// printBench reports a bench run: throughput plus the full latency
// distribution (p50/p95/p99 rather than a bare mean — tail latency is what
// an operator provisions for).
func printBench(what string, keyCount int, recorder *stats.LatencyRecorder, elapsed time.Duration) {
	summary := recorder.Summary()
	fmt.Printf("%s over %d key(s): %d ops in %v (%.0f ops/s)\n",
		what, keyCount, summary.Count, elapsed.Round(time.Millisecond), stats.Throughput(summary.Count, elapsed))
	fmt.Printf("latency: mean=%v p50=%v p95=%v p99=%v max=%v\n",
		summary.Mean.Round(time.Microsecond), summary.Median.Round(time.Microsecond),
		summary.P95.Round(time.Microsecond), summary.P99.Round(time.Microsecond),
		summary.Max.Round(time.Microsecond))
}
