package main

import (
	"encoding/hex"
	"fmt"
	"strings"

	"fastread/internal/sig"
	"fastread/internal/transport/tcpnet"
	"fastread/internal/types"
)

// parseBook parses the id=addr,... address book flag.
func parseBook(spec string) (tcpnet.AddressBook, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("an address book is required (-book id=host:port,...)")
	}
	book := make(tcpnet.AddressBook)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.SplitN(entry, "=", 2)
		if len(parts) != 2 || parts[1] == "" {
			return nil, fmt.Errorf("malformed address book entry %q", entry)
		}
		id, err := types.ParseProcessID(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, err
		}
		book[id] = strings.TrimSpace(parts[1])
	}
	return book, nil
}

// bookFromMembers converts a topology group's member map (textual process
// ids to host:port addresses) into an address book.
func bookFromMembers(members map[string]string) (tcpnet.AddressBook, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("the topology group has no members (socket transports need a per-group address book)")
	}
	book := make(tcpnet.AddressBook, len(members))
	for name, addr := range members {
		id, err := types.ParseProcessID(name)
		if err != nil {
			return nil, fmt.Errorf("member %q: %w", name, err)
		}
		if strings.TrimSpace(addr) == "" {
			return nil, fmt.Errorf("member %q has an empty address", name)
		}
		book[id] = strings.TrimSpace(addr)
	}
	return book, nil
}

// signerFromHex rebuilds the writer's signer from a hex-encoded ed25519 seed
// (any 32-byte seed).
func signerFromHex(keyHex string) (*sig.Signer, error) {
	if keyHex == "" {
		return nil, fmt.Errorf("the signing writer requires -writer-key (hex seed)")
	}
	// The Signer API is deliberately narrow; for the CLI we derive a key pair
	// from the seed bytes via the deterministic reader in sig.NewKeyPair.
	raw, err := hex.DecodeString(strings.TrimPrefix(keyHex, "0x"))
	if err != nil {
		return nil, err
	}
	kp, err := sig.NewKeyPair(seedReader(raw))
	if err != nil {
		return nil, err
	}
	return kp.Signer, nil
}

// verifierFromHex rebuilds a verifier from a hex-encoded public key.
func verifierFromHex(keyHex string) (sig.Verifier, error) {
	if keyHex == "" {
		return sig.Verifier{}, fmt.Errorf("the verifying reader requires -writer-key (hex public key)")
	}
	return sig.VerifierFromHex(keyHex)
}

// seedReader turns a byte slice into an io.Reader that repeats it, giving
// ed25519.GenerateKey the 32 bytes of entropy it needs deterministically.
type seedReader []byte

func (s seedReader) Read(p []byte) (int, error) {
	if len(s) == 0 {
		return 0, fmt.Errorf("empty seed")
	}
	for i := range p {
		p[i] = s[i%len(s)]
	}
	return len(p), nil
}
