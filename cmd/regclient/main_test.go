package main

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"fastread/internal/sig"
	"fastread/internal/types"
)

func TestParseBook(t *testing.T) {
	book, err := parseBook("s1=127.0.0.1:7101,w=127.0.0.1:7200")
	if err != nil {
		t.Fatal(err)
	}
	if book[types.Server(1)] != "127.0.0.1:7101" || book[types.Writer()] != "127.0.0.1:7200" {
		t.Errorf("book = %v", book)
	}
	for _, bad := range []string{"", "s1", "s1=", "zz=1.2.3.4:1"} {
		if _, err := parseBook(bad); err == nil {
			t.Errorf("parseBook(%q) succeeded, want error", bad)
		}
	}
}

func TestSeedReaderDeterministicKeys(t *testing.T) {
	s1, err := signerFromHex("aabbccddeeff00112233445566778899aabbccddeeff00112233445566778899")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := signerFromHex("aabbccddeeff00112233445566778899aabbccddeeff00112233445566778899")
	if err != nil {
		t.Fatal(err)
	}
	sig1 := s1.MustSign(1, types.Value("v"), nil)
	// The same seed must produce the same key pair, so signatures verify
	// under the other signer's verifier.
	if err := s2.Verifier().Verify(1, types.Value("v"), nil, sig1); err != nil {
		t.Errorf("signature from identical seed did not verify: %v", err)
	}
	if _, err := signerFromHex(""); err == nil {
		t.Error("empty writer key accepted")
	}
	if _, err := signerFromHex("zz"); err == nil {
		t.Error("invalid hex accepted")
	}
}

func TestVerifierFromHex(t *testing.T) {
	kp := sig.MustKeyPair()
	hexKey := ""
	for _, b := range kp.Verifier.PublicKey() {
		hexKey += string("0123456789abcdef"[b>>4]) + string("0123456789abcdef"[b&0xf])
	}
	v, err := verifierFromHex(hexKey)
	if err != nil {
		t.Fatal(err)
	}
	signature := kp.Signer.MustSign(2, types.Value("x"), nil)
	if err := v.Verify(2, types.Value("x"), nil, signature); err != nil {
		t.Errorf("verifier rejected valid signature: %v", err)
	}
	if _, err := verifierFromHex(""); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := verifierFromHex("abcd"); err == nil {
		t.Error("short key accepted")
	}
}

func TestSeedReaderEmptySeed(t *testing.T) {
	var r seedReader
	if _, err := r.Read(make([]byte, 8)); err == nil {
		t.Error("empty seed should error")
	}
}

func TestPipelinedBenchWindow(t *testing.T) {
	const ops, depth = 20, 4
	resolved := make([]chan struct{}, ops)
	for i := range resolved {
		resolved[i] = make(chan struct{})
		close(resolved[i]) // resolve immediately; the window still fills to depth
	}
	inFlight := 0
	maxInFlight := 0
	recorder, hist, err := pipelinedBench(context.Background(), ops, depth, time.Second,
		func(_ context.Context, i int) (func(context.Context) error, error) {
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			ch := resolved[i]
			return func(context.Context) error {
				<-ch
				inFlight--
				return nil
			}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if recorder.Count() != ops {
		t.Errorf("recorded %d latencies, want %d", recorder.Count(), ops)
	}
	if maxInFlight > depth {
		t.Errorf("window grew to %d, depth is %d", maxInFlight, depth)
	}
	if hist.Count() != ops {
		t.Errorf("histogram has %d samples, want %d", hist.Count(), ops)
	}
	if hist.Max() > depth-1 {
		t.Errorf("histogram max %d; at submit at most depth-1=%d ops can be in flight", hist.Max(), depth-1)
	}

	// A failing operation surfaces with its index.
	_, _, err = pipelinedBench(context.Background(), 3, 2, time.Second,
		func(_ context.Context, i int) (func(context.Context) error, error) {
			return func(context.Context) error {
				if i == 1 {
					return errors.New("boom")
				}
				return nil
			}, nil
		})
	if err == nil || !strings.Contains(err.Error(), "op 1") {
		t.Errorf("err = %v, want op 1 failure", err)
	}
}
