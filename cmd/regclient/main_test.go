package main

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"fastread/internal/sig"
	"fastread/internal/types"
)

func TestParseBook(t *testing.T) {
	book, err := parseBook("s1=127.0.0.1:7101,w=127.0.0.1:7200")
	if err != nil {
		t.Fatal(err)
	}
	if book[types.Server(1)] != "127.0.0.1:7101" || book[types.Writer()] != "127.0.0.1:7200" {
		t.Errorf("book = %v", book)
	}
	for _, bad := range []string{"", "s1", "s1=", "zz=1.2.3.4:1"} {
		if _, err := parseBook(bad); err == nil {
			t.Errorf("parseBook(%q) succeeded, want error", bad)
		}
	}
}

func TestSeedReaderDeterministicKeys(t *testing.T) {
	s1, err := signerFromHex("aabbccddeeff00112233445566778899aabbccddeeff00112233445566778899")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := signerFromHex("aabbccddeeff00112233445566778899aabbccddeeff00112233445566778899")
	if err != nil {
		t.Fatal(err)
	}
	sig1 := s1.MustSign(1, types.Value("v"), nil)
	// The same seed must produce the same key pair, so signatures verify
	// under the other signer's verifier.
	if err := s2.Verifier().Verify(1, types.Value("v"), nil, sig1); err != nil {
		t.Errorf("signature from identical seed did not verify: %v", err)
	}
	if _, err := signerFromHex(""); err == nil {
		t.Error("empty writer key accepted")
	}
	if _, err := signerFromHex("zz"); err == nil {
		t.Error("invalid hex accepted")
	}
}

func TestVerifierFromHex(t *testing.T) {
	kp := sig.MustKeyPair()
	hexKey := ""
	for _, b := range kp.Verifier.PublicKey() {
		hexKey += string("0123456789abcdef"[b>>4]) + string("0123456789abcdef"[b&0xf])
	}
	v, err := verifierFromHex(hexKey)
	if err != nil {
		t.Fatal(err)
	}
	signature := kp.Signer.MustSign(2, types.Value("x"), nil)
	if err := v.Verify(2, types.Value("x"), nil, signature); err != nil {
		t.Errorf("verifier rejected valid signature: %v", err)
	}
	if _, err := verifierFromHex(""); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := verifierFromHex("abcd"); err == nil {
		t.Error("short key accepted")
	}
}

func TestSeedReaderEmptySeed(t *testing.T) {
	var r seedReader
	if _, err := r.Read(make([]byte, 8)); err == nil {
		t.Error("empty seed should error")
	}
}

func TestPipelinedBenchWindow(t *testing.T) {
	const ops, depth = 20, 4
	resolved := make([]chan struct{}, ops)
	for i := range resolved {
		resolved[i] = make(chan struct{})
		close(resolved[i]) // resolve immediately; the window still fills to depth
	}
	inFlight := 0
	maxInFlight := 0
	recorder, hist, err := pipelinedBench(context.Background(), ops, depth, time.Second,
		func(_ context.Context, i int) (func(context.Context) error, error) {
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			ch := resolved[i]
			return func(context.Context) error {
				<-ch
				inFlight--
				return nil
			}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if recorder.Count() != ops {
		t.Errorf("recorded %d latencies, want %d", recorder.Count(), ops)
	}
	if maxInFlight > depth {
		t.Errorf("window grew to %d, depth is %d", maxInFlight, depth)
	}
	if hist.Count() != ops {
		t.Errorf("histogram has %d samples, want %d", hist.Count(), ops)
	}
	if hist.Max() > depth-1 {
		t.Errorf("histogram max %d; at submit at most depth-1=%d ops can be in flight", hist.Max(), depth-1)
	}

	// A failing operation surfaces with its index.
	_, _, err = pipelinedBench(context.Background(), 3, 2, time.Second,
		func(_ context.Context, i int) (func(context.Context) error, error) {
			return func(context.Context) error {
				if i == 1 {
					return errors.New("boom")
				}
				return nil
			}, nil
		})
	if err == nil || !strings.Contains(err.Error(), "op 1") {
		t.Errorf("err = %v, want op 1 failure", err)
	}
}

func TestFlagsParseSameBeforeAndAfterSubcommand(t *testing.T) {
	cases := [][2][]string{
		{
			{"-id", "w", "-ops", "1000", "-pipeline", "16", "-keys", "8", "bench"},
			{"-id", "w", "bench", "-ops", "1000", "-pipeline", "16", "-keys", "8"},
		},
		{
			{"-id", "w", "-rate", "2000", "-duration", "3s", "-admission", "1ms", "-zipf", "0.9", "loadgen"},
			{"-id", "w", "loadgen", "-rate", "2000", "-duration", "3s", "-admission", "1ms", "-zipf", "0.9"},
		},
		{
			{"-id", "r2", "-rates", "500,1000", "-knee-p99", "20ms", "loadgen"},
			{"-id", "r2", "loadgen", "-rates", "500,1000", "-knee-p99", "20ms"},
		},
		{
			// Split across the subcommand: some flags before, some after.
			{"-id", "w", "-keys", "4", "loadgen", "-rate", "750", "-arrival", "fixed"},
			{"-id", "w", "loadgen", "-keys", "4", "-rate", "750", "-arrival", "fixed"},
		},
	}
	for _, tc := range cases {
		before, err := parseCLI(tc[0])
		if err != nil {
			t.Fatalf("parseCLI(%v): %v", tc[0], err)
		}
		after, err := parseCLI(tc[1])
		if err != nil {
			t.Fatalf("parseCLI(%v): %v", tc[1], err)
		}
		if !reflect.DeepEqual(before, after) {
			t.Errorf("flag order changed the parse:\n before %+v\n after  %+v", before, after)
		}
		if before.configLine() != after.configLine() {
			t.Errorf("config echo differs:\n before %s\n after  %s", before.configLine(), after.configLine())
		}
	}
}

func TestConfigLineEchoesActiveConfig(t *testing.T) {
	c, err := parseCLI([]string{"-id", "w", "-S", "5", "-keys", "8", "loadgen", "-rate", "1500", "-admission", "2ms"})
	if err != nil {
		t.Fatal(err)
	}
	line := c.configLine()
	for _, want := range []string{"cmd=loadgen", "id=w", "S=5", "keys=8", "rates=1500", "admission=2ms", "arrival=poisson"} {
		if !strings.Contains(line, want) {
			t.Errorf("config line %q missing %q", line, want)
		}
	}
	b, err := parseCLI([]string{"-id", "r1", "bench", "-ops", "50", "-pipeline", "4"})
	if err != nil {
		t.Fatal(err)
	}
	bline := b.configLine()
	for _, want := range []string{"cmd=bench", "id=r1", "pipeline=4"} {
		if !strings.Contains(bline, want) {
			t.Errorf("bench config line %q missing %q", bline, want)
		}
	}
	if strings.Contains(bline, "rates=") {
		t.Errorf("bench config line %q leaked loadgen-only fields", bline)
	}
}

func TestParseRates(t *testing.T) {
	got, err := parseRates("500, 1000,2000")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 500 || got[1] != 1000 || got[2] != 2000 {
		t.Errorf("parseRates = %v", got)
	}
	for _, bad := range []string{"", "x", "-5", "0", "100,,x"} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("parseRates(%q) succeeded, want error", bad)
		}
	}
}
