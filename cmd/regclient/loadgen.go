package main

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"fastread/internal/driver"
	"fastread/internal/protoutil"
	"fastread/internal/types"
	"fastread/internal/workload"
)

// The loadgen subcommand is the open-loop counterpart of bench. bench is
// closed-loop: its workers wait for completions, so when the deployment
// slows down the offered load politely slows down with it and the reported
// latencies stay flattering. loadgen instead schedules arrivals on a clock
// at -rate ops/sec regardless of how the deployment is coping, and charges
// each operation's latency from its INTENDED arrival time — the
// coordinated-omission-safe discipline. With -rates r1,r2,... it sweeps the
// curve and reports the knee: the last rate whose p99 stayed under
// -knee-p99 while actually absorbing its offered load.
//
//	regclient -id w  -book "$BOOK" -key k -keys 8 loadgen -rate 2000 -duration 10s
//	regclient -id r1 -book "$BOOK" -key k -keys 8 loadgen -rates 500,1000,2000,4000
//	regclient -id w  -book "$BOOK" loadgen -rate 5000 -admission 1ms -pipeline 16

// parseRates parses the -rates comma list into ascending offered rates.
func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("-rates: bad rate %q (want positive ops/sec)", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-rates: no rates given")
	}
	return out, nil
}

// loadgenClient adapts the per-key driver handles to the open-loop
// generator. The generator shards arrivals by key, so each handle keeps its
// single-submitter discipline; the admission budget rides the operation
// context so a handle whose pipeline is saturated sheds with ErrOverloaded
// instead of blocking the generator.
func loadgenClient(writers []driver.Writer, readers []driver.Reader, admission time.Duration) workload.OpenLoopClient {
	admit := func(ctx context.Context) context.Context {
		if admission > 0 {
			return protoutil.WithAdmissionWait(ctx, admission)
		}
		return ctx
	}
	var c workload.OpenLoopClient
	if len(writers) > 0 {
		c.SubmitWrite = func(ctx context.Context, key int, seq int64) (func(context.Context) error, error) {
			f, err := writers[key].WriteAsync(admit(ctx), types.Value(fmt.Sprintf("load-%d", seq)))
			if err != nil {
				return nil, err
			}
			return f.Result, nil
		}
	}
	if len(readers) > 0 {
		c.SubmitRead = func(ctx context.Context, key int) (func(context.Context) error, error) {
			f, err := readers[key].ReadAsync(admit(ctx))
			if err != nil {
				return nil, err
			}
			return func(ctx context.Context) error {
				_, rerr := f.Result(ctx)
				return rerr
			}, nil
		}
	}
	return c
}

// printCurvePoint renders one rate step; the same shape whether it came from
// a single run or a sweep, so output lines are grep/awk-stable.
func printCurvePoint(p workload.CurvePoint) {
	fmt.Printf("rate: offered=%.1f goodput=%.1f p50=%.3fms p99=%.3fms p999=%.3fms max=%.3fms completed=%d overloaded=%d timeouts=%d failed=%d overrun=%d\n",
		p.OfferedRate, p.Goodput, p.P50ms, p.P99ms, p.P999ms, p.MaxMs,
		p.Completed, p.Overloaded, p.Timeouts, p.Failed, p.Overrun)
}

// runLoadgen drives the open-loop generator against the writer's or a
// reader's per-key handles: the client role decides the mix (the writer
// offers writes, a reader offers reads — the SWMR model has no mixed
// handle). Exactly one of writers/readers is non-empty.
func runLoadgen(ctx context.Context, c *cliConfig, writers []driver.Writer, readers []driver.Reader) error {
	keys := len(writers)
	readFraction := 0.0
	if keys == 0 {
		keys = len(readers)
		readFraction = 1.0
	}
	base := workload.OpenLoopConfig{
		Rate:         c.rate,
		Duration:     c.duration,
		Poisson:      c.arrival == "poisson",
		Seed:         c.seed,
		Keys:         keys,
		ZipfS:        c.zipfS,
		ReadFraction: readFraction,
		OpTimeout:    c.timeout,
	}
	client := loadgenClient(writers, readers, c.admission)

	if c.rates != "" {
		rates, err := parseRates(c.rates)
		if err != nil {
			return err
		}
		points, err := workload.RunSweep(ctx, workload.SweepConfig{
			Base:         base,
			Rates:        rates,
			StepDuration: c.duration,
			Settle:       200 * time.Millisecond,
		}, client)
		if err != nil {
			return err
		}
		for _, p := range points {
			printCurvePoint(p)
		}
		if i, ok := workload.Knee(points, c.kneeP99); ok {
			fmt.Printf("knee: %.1f ops/s (p99 %.3fms <= %v)\n", points[i].OfferedRate, points[i].P99ms, c.kneeP99)
		} else {
			fmt.Printf("knee: none (no swept rate kept p99 <= %v while absorbing its load)\n", c.kneeP99)
		}
		return nil
	}

	res, err := workload.RunOpenLoop(ctx, base, client)
	if err != nil {
		return err
	}
	printCurvePoint(workload.PointOf(res))
	return nil
}
