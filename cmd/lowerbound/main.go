// Command lowerbound executes the paper's lower-bound constructions
// (Proposition 5 for crash failures, Proposition 10 for arbitrary failures)
// against a live register deployment and narrates the resulting partial run.
//
// Usage:
//
//	lowerbound -S 4 -t 1 -R 2                 # crash construction, paper's reader
//	lowerbound -S 4 -t 1 -R 2 -reader naive   # attack the predicate-less strawman
//	lowerbound -S 7 -t 1 -b 1 -R 2 -byz       # Byzantine construction
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fastread/internal/adversary"
	"fastread/internal/quorum"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lowerbound", flag.ContinueOnError)
	var (
		servers   = fs.Int("S", 4, "number of servers")
		faulty    = fs.Int("t", 1, "maximum faulty servers")
		malicious = fs.Int("b", 0, "maximum malicious servers (Byzantine construction only)")
		readers   = fs.Int("R", 2, "number of readers")
		byz       = fs.Bool("byz", false, "run the arbitrary-failure construction (Figure 6)")
		reader    = fs.String("reader", "paper", "reader implementation to attack: paper | naive")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var kind adversary.ReaderKind
	switch *reader {
	case "paper":
		kind = adversary.ReaderPaper
	case "naive":
		kind = adversary.ReaderNaive
	default:
		return fmt.Errorf("unknown reader kind %q (want paper or naive)", *reader)
	}

	cfg := quorum.Config{Servers: *servers, Faulty: *faulty, Malicious: *malicious, Readers: *readers}
	fmt.Fprintf(out, "configuration: %v\n", cfg)
	fmt.Fprintf(out, "fast implementation possible: %v (bound: S > (R+2)t + (R+1)b)\n\n", cfg.FastReadPossible())

	var (
		res adversary.ConstructionResult
		err error
	)
	if *byz {
		res, err = adversary.RunByzantineConstruction(cfg, kind)
	} else {
		res, err = adversary.RunCrashConstruction(cfg, kind)
	}
	if err != nil {
		return err
	}

	fmt.Fprintln(out, "schedule narrative:")
	for i, line := range res.Narrative {
		fmt.Fprintf(out, "  %2d. %s\n", i+1, line)
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out, "recorded history:")
	fmt.Fprint(out, res.History)
	fmt.Fprintln(out)
	fmt.Fprintln(out, "verdict:", res.Report)
	if res.Violation {
		fmt.Fprintln(out, "=> the schedule produced an atomicity violation, as the paper predicts for this configuration")
	} else {
		fmt.Fprintln(out, "=> the schedule could not break atomicity, as the paper predicts for this configuration")
	}
	return nil
}
