package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunCrashConstructionBeyondBound(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-S", "4", "-t", "1", "-R", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "atomicity violation, as the paper predicts") {
		t.Errorf("expected a violation verdict:\n%s", text)
	}
	if !strings.Contains(text, "schedule narrative:") {
		t.Errorf("missing narrative:\n%s", text)
	}
}

func TestRunCrashConstructionWithinBound(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-S", "7", "-t", "1", "-R", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "could not break atomicity") {
		t.Errorf("expected a no-violation verdict:\n%s", out.String())
	}
}

func TestRunByzantineConstruction(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-S", "7", "-t", "1", "-b", "1", "-R", "2", "-byz"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "atomicity violation, as the paper predicts") {
		t.Errorf("expected a violation verdict:\n%s", out.String())
	}
}

func TestRunNaiveReader(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-S", "7", "-t", "1", "-R", "2", "-reader", "naive"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "VIOLATED") {
		t.Errorf("naive reader should be broken even within the bound:\n%s", out.String())
	}
}

func TestRunRejectsBadArguments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-reader", "nonsense"}, &out); err == nil {
		t.Error("unknown reader kind accepted")
	}
	if err := run([]string{"-S", "3", "-t", "0", "-R", "2"}, &out); err == nil {
		t.Error("t=0 construction accepted")
	}
	if err := run([]string{"-not-a-flag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
