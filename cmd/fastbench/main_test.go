package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list output missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunSingleExperimentQuick(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick", "-exp", "e5"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "E5") || !strings.Contains(text, "naive fast MWMR") {
		t.Errorf("unexpected output:\n%s", text)
	}
	if !strings.Contains(text, "completed 1 experiment(s)") {
		t.Errorf("missing completion line:\n%s", text)
	}
}

func TestRunMarkdownOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick", "-markdown", "-exp", "E5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "| S |") {
		t.Errorf("markdown table missing:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E42"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
