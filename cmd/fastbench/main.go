// Command fastbench runs the paper-reproduction experiments (E1..E8 in
// DESIGN.md) and prints their tables.
//
// Usage:
//
//	fastbench                 # run every experiment at full size
//	fastbench -exp E2,E7      # run a subset
//	fastbench -quick          # reduced sizes (seconds instead of minutes)
//	fastbench -markdown       # emit GitHub Markdown tables (for EXPERIMENTS.md)
//	fastbench -delay 2ms      # per-message delay for the latency experiment
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"fastread/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fastbench:", err)
		os.Exit(1)
	}
}

// run parses arguments and executes the selected experiments.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fastbench", flag.ContinueOnError)
	var (
		expList  = fs.String("exp", "", "comma-separated experiment ids (default: all)")
		quick    = fs.Bool("quick", false, "run reduced-size experiments")
		markdown = fs.Bool("markdown", false, "render tables as GitHub Markdown")
		delay    = fs.Duration("delay", 0, "per-message one-way delay for latency experiments (default 1ms, 200µs with -quick)")
		seed     = fs.Int64("seed", 1, "workload seed")
		list     = fs.Bool("list", false, "list available experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-4s %-60s (%s)\n", e.ID, e.Title, e.Paper)
		}
		return nil
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed, Delay: *delay}

	selected := experiments.All()
	if *expList != "" {
		selected = nil
		for _, id := range strings.Split(*expList, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			exp, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(experiments.IDs(), ", "))
			}
			selected = append(selected, exp)
		}
	}

	start := time.Now()
	for _, exp := range selected {
		fmt.Fprintf(out, "== %s — %s (%s)\n\n", exp.ID, exp.Title, exp.Paper)
		tables, err := exp.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		for _, tbl := range tables {
			if *markdown {
				fmt.Fprintln(out, tbl.Markdown())
			} else {
				fmt.Fprintln(out, tbl.String())
			}
		}
	}
	fmt.Fprintf(out, "completed %d experiment(s) in %v\n", len(selected), time.Since(start).Round(time.Millisecond))
	return nil
}
