// Command loadsweep drives the open-loop generator against in-process
// fastread deployments and emits throughput-vs-latency curves as JSON — the
// data behind BENCH_10.json. Each curve is one transport × pipeline-depth
// combination swept over ascending offered rates; every point carries
// coordinated-omission-safe p50/p99/p999 (latency measured from each
// operation's intended arrival) plus the exact shed/timeout accounting, and
// each curve reports its knee: the last rate whose p99 stayed under
// -knee-p99 while absorbing ≥90% of its offered load.
//
//	loadsweep -transports inmem,tcp,udp -depths 1,16 -rates 250,500,1000,2000 -o BENCH.json
//
// With -smoke it instead runs a seconds-long self-check for CI: a tiny sweep
// proving the knee finder runs end to end, a forced server-side overload
// proving bounded queues shed (ShedDrops > 0) while every submitted
// operation still resolves, and an admission-control overload proving the
// open-loop accounting identity offered == completed + overloaded +
// timeouts + failed + overrun holds exactly. Any violated invariant exits 1.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fastread"
	"fastread/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadsweep:", err)
		os.Exit(1)
	}
}

type curveOut struct {
	Transport   string                `json:"transport"`
	Depth       int                   `json:"depth"`
	Protocol    string                `json:"protocol"`
	Points      []workload.CurvePoint `json:"points"`
	KneeRate    float64               `json:"knee_rate"` // -1: no rate stayed under the limit
	KneeP99Ms   float64               `json:"knee_p99_ms"`
	KneeLimitMs float64               `json:"knee_limit_ms"`
}

type sweepOut struct {
	Config map[string]any `json:"config"`
	Curves []curveOut     `json:"curves"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadsweep", flag.ContinueOnError)
	var (
		out        = fs.String("o", "", "write the JSON report here (empty = stdout)")
		transports = fs.String("transports", "inmem,tcp,udp", "comma list of transports to sweep: inmem | tcp | udp")
		depths     = fs.String("depths", "1,16", "comma list of pipeline depths to sweep")
		rates      = fs.String("rates", "250,500,1000,2000", "comma list of offered rates (ops/sec), ascending")
		duration   = fs.Duration("duration", 500*time.Millisecond, "arrival window per rate step")
		keys       = fs.Int("keys", 4, "registers per deployment (arrivals spread zipfian over them)")
		protocol   = fs.String("protocol", "fast", "register protocol for the swept deployments")
		kneeP99    = fs.Duration("knee-p99", 25*time.Millisecond, "p99 threshold for the knee finder")
		admission  = fs.Duration("admission", time.Millisecond, "admission budget for the swept deployments (sheds instead of wedging the generator)")
		seed       = fs.Int64("seed", 1, "workload RNG seed")
		smoke      = fs.Bool("smoke", false, "run the CI self-check instead of a sweep")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *smoke {
		return runSmoke()
	}

	rateList, err := parseFloats(*rates)
	if err != nil {
		return err
	}
	depthList, err := parseInts(*depths)
	if err != nil {
		return err
	}

	report := sweepOut{
		Config: map[string]any{
			"protocol":     *protocol,
			"servers":      4,
			"faulty":       1,
			"readers":      1,
			"keys":         *keys,
			"rates":        rateList,
			"step_ms":      float64(*duration) / float64(time.Millisecond),
			"admission_ms": float64(*admission) / float64(time.Millisecond),
			"read_frac":    0.5,
			"zipf_s":       1.0,
			"seed":         *seed,
		},
	}
	ctx := context.Background()
	for _, tr := range strings.Split(*transports, ",") {
		tr = strings.TrimSpace(tr)
		for _, depth := range depthList {
			curve, err := sweepOne(ctx, tr, depth, *protocol, *keys, rateList, *duration, *admission, *kneeP99, *seed)
			if err != nil {
				return fmt.Errorf("%s depth=%d: %w", tr, depth, err)
			}
			fmt.Fprintf(os.Stderr, "loadsweep: %s depth=%d done (knee %.0f ops/s)\n", tr, depth, curve.KneeRate)
			report.Curves = append(report.Curves, curve)
		}
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

func protocolFor(name string) (fastread.Protocol, error) {
	for _, p := range []fastread.Protocol{
		fastread.ProtocolFast, fastread.ProtocolFastByzantine,
		fastread.ProtocolABD, fastread.ProtocolMaxMin, fastread.ProtocolRegular,
	} {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown protocol %q", name)
}

func transportFor(name string) (fastread.Transport, error) {
	switch name {
	case "inmem":
		return fastread.InMemory(), nil
	case "tcp":
		return fastread.TCP(nil), nil
	case "udp":
		return fastread.UDP(nil), nil
	default:
		return nil, fmt.Errorf("unknown transport %q (want inmem, tcp or udp)", name)
	}
}

func sweepOne(ctx context.Context, transport string, depth int, protocol string, keys int,
	rates []float64, step, admission, kneeP99 time.Duration, seed int64) (curveOut, error) {

	tr, err := transportFor(transport)
	if err != nil {
		return curveOut{}, err
	}
	proto, err := protocolFor(protocol)
	if err != nil {
		return curveOut{}, err
	}
	store, err := fastread.NewStore(fastread.Config{
		Servers:       4,
		Faulty:        1,
		Readers:       1,
		Protocol:      proto,
		Transport:     tr,
		PipelineDepth: depth,
		AdmissionWait: admission,
	})
	if err != nil {
		return curveOut{}, err
	}
	defer store.Close()
	client, err := storeClient(store, keys)
	if err != nil {
		return curveOut{}, err
	}
	points, err := workload.RunSweep(ctx, workload.SweepConfig{
		Base: workload.OpenLoopConfig{
			Poisson:      true,
			Seed:         seed,
			Keys:         keys,
			ZipfS:        1.0,
			ReadFraction: 0.5,
			OpTimeout:    2 * time.Second,
		},
		Rates:        rates,
		StepDuration: step,
		Settle:       100 * time.Millisecond,
	}, client)
	if err != nil {
		return curveOut{}, err
	}
	curve := curveOut{
		Transport:   transport,
		Depth:       depth,
		Protocol:    protocol,
		Points:      points,
		KneeRate:    -1,
		KneeP99Ms:   -1,
		KneeLimitMs: float64(kneeP99) / float64(time.Millisecond),
	}
	if i, ok := workload.Knee(points, kneeP99); ok {
		curve.KneeRate = points[i].OfferedRate
		curve.KneeP99Ms = points[i].P99ms
	}
	return curve, nil
}

// storeClient adapts keys registers of a store to the open-loop generator.
// The generator shards arrivals by key, preserving each handle's
// single-submitter discipline.
func storeClient(store *fastread.Store, keys int) (workload.OpenLoopClient, error) {
	writers := make([]fastread.Writer, keys)
	readers := make([]fastread.Reader, keys)
	for i := 0; i < keys; i++ {
		reg, err := store.Register(fmt.Sprintf("sweep-%03d", i))
		if err != nil {
			return workload.OpenLoopClient{}, err
		}
		writers[i] = reg.Writer()
		readers[i] = reg.Readers()[0]
	}
	return workload.OpenLoopClient{
		SubmitWrite: func(ctx context.Context, key int, seq int64) (func(context.Context) error, error) {
			wf, err := writers[key].WriteAsync(ctx, []byte(strconv.FormatInt(seq, 10)))
			if err != nil {
				return nil, err
			}
			return wf.Result, nil
		},
		SubmitRead: func(ctx context.Context, key int) (func(context.Context) error, error) {
			rf, err := readers[key].ReadAsync(ctx)
			if err != nil {
				return nil, err
			}
			return func(ctx context.Context) error {
				_, err := rf.Result(ctx)
				return err
			}, nil
		},
	}, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad rate %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rates given")
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad depth %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no depths given")
	}
	return out, nil
}

// runSmoke is the CI self-check: three seconds-long scenarios, each
// asserting an invariant the overload control must hold. Returning an error
// (exit 1) on any violation makes this a regression gate, not a timing
// benchmark.
func runSmoke() error {
	ctx := context.Background()

	// 1. The knee finder runs end to end on a real (tiny) sweep.
	{
		store, err := fastread.NewStore(fastread.Config{
			Servers: 4, Faulty: 1, Readers: 1,
			Protocol:      fastread.ProtocolFast,
			PipelineDepth: 16,
			AdmissionWait: time.Millisecond,
		})
		if err != nil {
			return err
		}
		client, err := storeClient(store, 2)
		if err != nil {
			store.Close()
			return err
		}
		points, err := workload.RunSweep(ctx, workload.SweepConfig{
			Base: workload.OpenLoopConfig{
				Poisson: true, Seed: 7, Keys: 2, ReadFraction: 0.5, OpTimeout: 2 * time.Second,
			},
			Rates:        []float64{200, 400},
			StepDuration: 250 * time.Millisecond,
		}, client)
		store.Close()
		if err != nil {
			return fmt.Errorf("smoke sweep: %w", err)
		}
		if len(points) != 2 {
			return fmt.Errorf("smoke sweep: got %d points, want 2", len(points))
		}
		i, ok := workload.Knee(points, 100*time.Millisecond)
		if !ok {
			return fmt.Errorf("smoke sweep: no knee under an unmissable 100ms p99 limit: %+v", points)
		}
		fmt.Printf("smoke sweep: ok, knee %.0f ops/s (p99 %.3fms)\n", points[i].OfferedRate, points[i].P99ms)
	}

	// 2. Fixed-rate open loop far past capacity with admission control on:
	// the generator must shed (Overloaded > 0) and the accounting identity
	// must hold exactly — no operation silently lost.
	{
		store, err := fastread.NewStore(fastread.Config{
			Servers: 4, Faulty: 1, Readers: 1,
			Protocol:      fastread.ProtocolFast,
			PipelineDepth: 2,
			NetworkDelay:  2 * time.Millisecond,
			AdmissionWait: 500 * time.Microsecond,
			QueueBound:    128,
		})
		if err != nil {
			return err
		}
		client, err := storeClient(store, 2)
		if err != nil {
			store.Close()
			return err
		}
		res, err := workload.RunOpenLoop(ctx, workload.OpenLoopConfig{
			Rate: 4000, Duration: 300 * time.Millisecond,
			Seed: 7, Keys: 2, ReadFraction: 0.5, OpTimeout: 2 * time.Second,
		}, client)
		stats := store.Stats()
		store.Close()
		if err != nil {
			return fmt.Errorf("smoke overload: %w", err)
		}
		got := res.Completed + res.Overloaded + res.Timeouts + res.Failed + res.Overrun
		if got != res.Offered {
			return fmt.Errorf("smoke overload: accounting leak, offered %d classified %d", res.Offered, got)
		}
		if res.Overloaded == 0 {
			return fmt.Errorf("smoke overload: expected ErrOverloaded sheds at 4000 ops/s over a ~1000 ops/s deployment, got none (completed=%d)", res.Completed)
		}
		if stats.MailboxHighWater > 128 {
			return fmt.Errorf("smoke overload: mailbox high water %d exceeds bound 128", stats.MailboxHighWater)
		}
		fmt.Printf("smoke overload: ok, offered=%d completed=%d overloaded=%d timeouts=%d\n",
			res.Offered, res.Completed, res.Overloaded, res.Timeouts)
	}

	// 3. Bounded server queues under a verification-limited write burst: the
	// shed counter must move and every submitted operation must still
	// resolve (complete from admitted copies, or fail its own deadline).
	{
		store, err := fastread.NewStore(fastread.Config{
			Servers: 8, Faulty: 1, Malicious: 1, Readers: 1,
			Protocol:      fastread.ProtocolFastByzantine,
			ServerWorkers: 1,
			PipelineDepth: 24,
			QueueBound:    8,
		})
		if err != nil {
			return err
		}
		const keys, perKey = 2, 24
		regs := make([]*fastread.Register, keys)
		for i := range regs {
			if regs[i], err = store.Register(fmt.Sprintf("burst-%d", i)); err != nil {
				store.Close()
				return err
			}
		}
		burstCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
		var wg sync.WaitGroup
		var completed, errored atomic.Int64
		for _, reg := range regs {
			wg.Add(1)
			go func(w fastread.Writer) {
				defer wg.Done()
				futures := make([]*fastread.WriteFuture, 0, perKey)
				for i := 0; i < perKey; i++ {
					wf, err := w.WriteAsync(burstCtx, []byte(fmt.Sprintf("b%d", i)))
					if err != nil {
						errored.Add(1)
						continue
					}
					futures = append(futures, wf)
				}
				for _, wf := range futures {
					if wf.Result(burstCtx) != nil {
						errored.Add(1)
					} else {
						completed.Add(1)
					}
				}
			}(reg.Writer())
		}
		wg.Wait()
		cancel()
		stats := store.Stats()
		store.Close()
		if total := completed.Load() + errored.Load(); total != keys*perKey {
			return fmt.Errorf("smoke shed: per-op accounting leak, %d submitted %d resolved", keys*perKey, total)
		}
		if completed.Load() == 0 {
			return fmt.Errorf("smoke shed: no write completed at all")
		}
		if stats.ShedDrops == 0 {
			return fmt.Errorf("smoke shed: bounded queues shed nothing under a %d-write burst at bound 8", keys*perKey)
		}
		fmt.Printf("smoke shed: ok, completed=%d errored=%d shedDrops=%d\n",
			completed.Load(), errored.Load(), stats.ShedDrops)
	}

	fmt.Println("loadsweep smoke: all invariants held")
	return nil
}
