// Command regserver runs one register server process over TCP. A full
// deployment consists of S regserver processes (one per server identity)
// plus clients driven by cmd/regclient.
//
// One deployment serves MANY named registers: every protocol message carries
// a register key, and the server keeps fully separate state per key (lazily
// instantiated on first use), so no per-register configuration or restart is
// needed — point regclient at any -key and the register exists.
//
// The address book is a comma-separated list of id=host:port pairs covering
// every process in the deployment, e.g.:
//
//	-book "s1=127.0.0.1:7101,s2=127.0.0.1:7102,s3=127.0.0.1:7103,s4=127.0.0.1:7104,w=127.0.0.1:7200,r1=127.0.0.1:7201"
//
// Example 4-server deployment (each in its own terminal):
//
//	regserver -id s1 -book "$BOOK" -readers 1
//	regserver -id s2 -book "$BOOK" -readers 1
//	regserver -id s3 -book "$BOOK" -readers 1
//	regserver -id s4 -book "$BOOK" -readers 1
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"fastread/internal/core"
	"fastread/internal/sig"
	"fastread/internal/transport/tcpnet"
	"fastread/internal/types"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "regserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("regserver", flag.ContinueOnError)
	var (
		idFlag   = fs.String("id", "s1", "server identity (s1, s2, ...)")
		bookFlag = fs.String("book", "", "address book: comma-separated id=host:port pairs")
		readers  = fs.Int("readers", 1, "number of reader processes (R)")
		byz      = fs.Bool("byz", false, "run the arbitrary-failure variant (requires -writer-pubkey)")
		pubKey   = fs.String("writer-pubkey", "", "hex-encoded writer public key (Byzantine variant)")
		listen   = fs.String("listen", "", "listen address override (defaults to the address book entry)")
		workers  = fs.Int("workers", 0, "key-shard workers executing messages in parallel (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	id, err := types.ParseProcessID(*idFlag)
	if err != nil {
		return err
	}
	if id.Role != types.RoleServer {
		return fmt.Errorf("-id must name a server (s1, s2, ...), got %q", *idFlag)
	}
	book, err := ParseAddressBook(*bookFlag)
	if err != nil {
		return err
	}

	node, err := tcpnet.Listen(tcpnet.Config{Self: id, ListenAddr: *listen, Book: book})
	if err != nil {
		return err
	}
	defer node.Close()

	serverCfg := core.ServerConfig{ID: id, Readers: *readers, Byzantine: *byz, Workers: *workers}
	if *byz {
		verifier, err := ParseVerifier(*pubKey)
		if err != nil {
			return err
		}
		serverCfg.Verifier = verifier
	}
	server, err := core.NewServer(serverCfg, node)
	if err != nil {
		return err
	}
	server.Start()
	defer server.Stop()

	fmt.Printf("register server %s listening on %s (readers=%d byzantine=%v workers=%d, serving all register keys)\n",
		id, node.Addr(), *readers, *byz, server.Workers())
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	<-stop
	// Surface traffic that was silently discarded (full inbox, unreachable
	// peers) so operators notice overload or partitions that the
	// asynchronous protocols themselves tolerate without complaint.
	stats := node.Stats()
	fmt.Printf("shutting down: delivered=%d dropped_inbound=%d dropped_send=%d\n",
		stats.Delivered, stats.DroppedInbound, stats.DroppedSend)
	return nil
}

// ParseVerifier decodes a hex-encoded ed25519 public key.
func ParseVerifier(hexKey string) (sig.Verifier, error) {
	if hexKey == "" {
		return sig.Verifier{}, fmt.Errorf("the Byzantine variant requires -writer-pubkey")
	}
	raw, err := decodeHex(hexKey)
	if err != nil {
		return sig.Verifier{}, fmt.Errorf("decode -writer-pubkey: %w", err)
	}
	return sig.VerifierFromPublicKey(raw)
}
