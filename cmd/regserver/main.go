// Command regserver runs one register server process over real sockets —
// TCP by default, or the batched-syscall UDP transport with -transport udp
// (every process in a deployment must use the same transport). A full
// deployment consists of S regserver processes (one per server identity)
// plus clients driven by cmd/regclient.
//
// The protocol is selected with -protocol and resolved through the protocol
// driver registry, so one binary serves every register implementation in the
// repository: the paper's fast register (default), its arbitrary-failure
// variant, the ABD baseline, the max-min variant and the regular register.
// The deployment parameters (-S, -t, -b, -R) must match what the clients are
// started with.
//
// One deployment serves MANY named registers: every protocol message carries
// a register key, and the server keeps fully separate state per key (lazily
// instantiated on first use), so no per-register configuration or restart is
// needed — point regclient at any -key and the register exists.
//
// With -data-dir the server is durable: every mutation is write-ahead logged
// to the given private directory before it is acknowledged (flush policy per
// -fsync), state is periodically snapshotted, and a restarted process recovers
// its registers and incarnation counter from disk — a kill -9 loses at most
// what the fsync policy permits. In a -groups deployment the topology's epoch
// is stamped into the log so recovery refuses state from a reconfigured
// keyspace layout.
//
// The address book is a comma-separated list of id=host:port pairs covering
// every process in the deployment, e.g.:
//
//	-book "s1=127.0.0.1:7101,s2=127.0.0.1:7102,s3=127.0.0.1:7103,s4=127.0.0.1:7104,w=127.0.0.1:7200,r1=127.0.0.1:7201"
//
// Example 4-server ABD deployment (each in its own terminal):
//
//	regserver -id s1 -book "$BOOK" -protocol abd -S 4 -t 1 -R 1
//	regserver -id s2 -book "$BOOK" -protocol abd -S 4 -t 1 -R 1
//	regserver -id s3 -book "$BOOK" -protocol abd -S 4 -t 1 -R 1
//	regserver -id s4 -book "$BOOK" -protocol abd -S 4 -t 1 -R 1
//
// A partitioned deployment (see internal/topology) replaces -book with a
// shared topology file plus the name of the replica group this process
// belongs to:
//
//	regserver -id s1 -groups topo.json -group g2 -protocol abd -R 1
//
// The group's quorum parameters (S, t, b) and address book then come from
// its topology entry, so the only per-process variation inside a group is
// -id; -S/-t/-b act as fallbacks for topology entries that omit them.
// Groups are fully disjoint deployments — a server only ever exchanges
// messages with its own group's members — and clients route each key to its
// owning group with the same consistent-hash ring this file describes.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"fastread/internal/driver"
	"fastread/internal/durable"
	"fastread/internal/quorum"
	"fastread/internal/topology"
	"fastread/internal/transport"
	"fastread/internal/transport/tcpnet"
	"fastread/internal/transport/udpnet"
	"fastread/internal/types"

	// Register every protocol driver this binary can serve.
	_ "fastread/internal/abd"
	_ "fastread/internal/core"
	_ "fastread/internal/maxmin"
	_ "fastread/internal/regular"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "regserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("regserver", flag.ContinueOnError)
	var (
		idFlag    = fs.String("id", "s1", "server identity (s1, s2, ...)")
		bookFlag  = fs.String("book", "", "address book: comma-separated id=host:port pairs")
		groupsArg = fs.String("groups", "", "topology file (JSON) describing a partitioned deployment (replaces -book, requires -group)")
		groupArg  = fs.String("group", "", "replica group this server belongs to (requires -groups)")
		protocol  = fs.String("protocol", "fast", "register protocol: "+strings.Join(driver.Names(), " | "))
		servers   = fs.Int("S", 4, "number of servers in the deployment")
		faulty    = fs.Int("t", 1, "maximum faulty servers")
		bad       = fs.Int("b", 0, "maximum malicious servers (fast-byz)")
		readers   = fs.Int("R", 1, "number of reader processes")
		byz       = fs.Bool("byz", false, "deprecated: alias for -protocol fast-byz")
		pubKey    = fs.String("writer-pubkey", "", "hex-encoded writer public key (signature-verifying protocols)")
		listen    = fs.String("listen", "", "listen address override (defaults to the address book entry)")
		workers   = fs.Int("workers", 0, "key-shard workers executing messages in parallel (0 = GOMAXPROCS)")
		qbound    = fs.Int("queue-bound", 0, "cap on each executor queue: excess messages are shed and counted instead of queueing without bound (0 = unbounded)")
		trans     = fs.String("transport", "tcp", "socket transport: tcp | udp (must match the clients)")
		dataDir   = fs.String("data-dir", "", "private durable-state directory for THIS server process: mutations are write-ahead logged there before acknowledgement and recovered on restart (empty = in-memory only)")
		fsyncArg  = fs.String("fsync", "interval", "durable log flush policy with -data-dir: always | interval | never")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *byz {
		switch *protocol {
		case "fast", "fast-byz":
			*protocol = "fast-byz"
		default:
			return fmt.Errorf("contradictory flags: -byz with -protocol %s", *protocol)
		}
	}

	drv, ok := driver.Lookup(*protocol)
	if !ok {
		return fmt.Errorf("unknown -protocol %q (have: %s)", *protocol, strings.Join(driver.Names(), ", "))
	}
	id, err := types.ParseProcessID(*idFlag)
	if err != nil {
		return err
	}
	if id.Role != types.RoleServer {
		return fmt.Errorf("-id must name a server (s1, s2, ...), got %q", *idFlag)
	}
	var (
		book       tcpnet.AddressBook
		groupLabel string
		epoch      uint64
	)
	switch {
	case *groupsArg != "":
		if *groupArg == "" {
			return fmt.Errorf("-groups requires -group: name the replica group this server serves")
		}
		if *bookFlag != "" {
			return fmt.Errorf("-groups and -book are mutually exclusive: the topology carries each group's address book")
		}
		topo, err := topology.Load(*groupsArg)
		if err != nil {
			return err
		}
		gi, err := topo.GroupIndex(*groupArg)
		if err != nil {
			return err
		}
		g := topo.Groups[gi]
		if book, err = BookFromMembers(g.Members); err != nil {
			return fmt.Errorf("group %q: %w", g.Name, err)
		}
		// A topology entry that spells out its quorum shape wins over the
		// -S/-t/-b fallbacks: inside a group the only per-process flag is -id.
		if g.Servers != 0 {
			*servers, *faulty, *bad = g.Servers, g.Faulty, g.Malicious
		}
		if id.Index > *servers {
			return fmt.Errorf("-id %s exceeds group %q (S=%d)", id, g.Name, *servers)
		}
		groupLabel = g.Name
		// The topology's epoch is stamped into this server's durable log: a
		// restart under a RECONFIGURED topology (different epoch) refuses to
		// resurrect state persisted under the old keyspace layout.
		epoch = topo.Epoch
	case *groupArg != "":
		return fmt.Errorf("-group requires -groups: point it at the deployment's topology file")
	default:
		if book, err = ParseAddressBook(*bookFlag); err != nil {
			return err
		}
	}
	qcfg := quorum.Config{Servers: *servers, Faulty: *faulty, Malicious: *bad, Readers: *readers}
	if err := qcfg.Validate(); err != nil {
		return err
	}
	if err := drv.Validate(qcfg); err != nil {
		return err
	}

	serverCfg := driver.ServerConfig{ID: id, Quorum: qcfg, Workers: *workers, QueueBound: *qbound}
	var durCounters *durable.Counters
	if *dataDir != "" {
		durCounters = &durable.Counters{}
		serverCfg.Durable = &durable.Options{
			Dir:      *dataDir,
			Fsync:    durable.Policy(*fsyncArg),
			Epoch:    epoch,
			Counters: durCounters,
		}
	}
	if drv.NeedsSignatures {
		verifier, err := ParseVerifier(*pubKey)
		if err != nil {
			return err
		}
		serverCfg.Verifier = verifier
	}

	node, nodeAddr, nodeStats, err := listenNode(*trans, id, *listen, book)
	if err != nil {
		return err
	}
	defer node.Close()

	server, err := drv.NewServer(serverCfg, node)
	if err != nil {
		return err
	}
	server.Start()
	defer server.Stop()

	// The group id rides both the startup and shutdown lines so an operator
	// tailing sixteen process logs can attribute every line to its quorum
	// group without cross-referencing the topology file.
	groupNote := ""
	if groupLabel != "" {
		groupNote = " group=" + groupLabel
	}
	fmt.Printf("register server %s%s listening on %s/%s (protocol=%s %v workers=%d, serving all register keys)\n",
		id, groupNote, *trans, nodeAddr(), drv.Name, qcfg, server.Workers())
	if durCounters != nil {
		// Recovery already ran inside NewServer; say what came back so an
		// operator restarting a crashed server sees its state survived.
		ds := durCounters.Snapshot()
		fmt.Printf("durable %s%s: dir=%s fsync=%s epoch=%d incarnation=%d segments_replayed=%d records_recovered=%d torn_tail_trims=%d\n",
			id, groupNote, *dataDir, *fsyncArg, epoch, ds.Incarnation, ds.SegmentsReplayed, ds.RecordsRecovered, ds.TornTailTrims)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	<-stop
	// A graceful shutdown flushes and snapshots the durable log before the
	// final stats print; Stop is idempotent, so the deferred call becomes a
	// no-op.
	server.Stop()
	// Surface traffic that was silently discarded (full inbox, bounded
	// write-queue overflow, unreachable peers, duplicate datagrams) so
	// operators notice overload or partitions the asynchronous protocols
	// themselves tolerate without complaint.
	stats := nodeStats()
	queueSheds := int64(0)
	if qs, ok := server.(interface{ QueueSheds() int64 }); ok {
		queueSheds = qs.QueueSheds()
	}
	fmt.Printf("shutting down %s%s: transport=%s delivered=%d frames=%d dropped_inbound=%d dropped_send=%d dedup_drops=%d queue_sheds=%d\n",
		id, groupNote, *trans, stats.delivered, stats.frames, stats.droppedInbound, stats.droppedSend, stats.dedupDrops, queueSheds)
	if durCounters != nil {
		ds := durCounters.Snapshot()
		fmt.Printf("durable shutdown %s%s: incarnation=%d appends=%d fsyncs=%d snapshots=%d snapshot_records=%d append_errors=%d\n",
			id, groupNote, ds.Incarnation, ds.Appends, ds.Fsyncs, ds.Snapshots, ds.SnapshotRecords, ds.AppendErrors)
	}
	return nil
}

// nodeCounters is the transport-neutral view of a socket node's drop and
// delivery counters, for the shutdown log.
type nodeCounters struct {
	delivered, frames, droppedInbound, droppedSend, dedupDrops int64
}

// listenNode binds the server's socket on the chosen transport, returning the
// node together with accessors for its bound address and counters.
func listenNode(kind string, id types.ProcessID, listen string, book tcpnet.AddressBook) (transport.Node, func() string, func() nodeCounters, error) {
	switch kind {
	case "tcp":
		n, err := tcpnet.Listen(tcpnet.Config{Self: id, ListenAddr: listen, Book: book})
		if err != nil {
			return nil, nil, nil, err
		}
		return n, n.Addr, func() nodeCounters {
			s := n.Stats()
			return nodeCounters{s.Delivered, s.Frames, s.DroppedInbound, s.DroppedSend, 0}
		}, nil
	case "udp":
		ub := make(udpnet.AddressBook, len(book))
		for k, v := range book {
			ub[k] = v
		}
		n, err := udpnet.Listen(udpnet.Config{Self: id, ListenAddr: listen, Book: ub})
		if err != nil {
			return nil, nil, nil, err
		}
		return n, n.Addr, func() nodeCounters {
			s := n.Stats()
			return nodeCounters{s.Delivered, s.Frames, s.DroppedInbound, s.DroppedSend, s.DedupDrops}
		}, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown -transport %q (want tcp or udp)", kind)
	}
}
