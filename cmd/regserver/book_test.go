package main

import (
	"testing"

	"fastread/internal/sig"
	"fastread/internal/types"
)

func TestParseAddressBook(t *testing.T) {
	book, err := ParseAddressBook("s1=127.0.0.1:7101, s2=127.0.0.1:7102 ,w=host:9,r1=10.0.0.2:80")
	if err != nil {
		t.Fatal(err)
	}
	if len(book) != 4 {
		t.Fatalf("len = %d, want 4", len(book))
	}
	if book[types.Server(1)] != "127.0.0.1:7101" {
		t.Errorf("s1 = %q", book[types.Server(1)])
	}
	if book[types.Writer()] != "host:9" {
		t.Errorf("w = %q", book[types.Writer()])
	}
	if book[types.Reader(1)] != "10.0.0.2:80" {
		t.Errorf("r1 = %q", book[types.Reader(1)])
	}
}

func TestParseAddressBookErrors(t *testing.T) {
	cases := []string{
		"",
		"   ",
		"s1",
		"s1=",
		"x9=127.0.0.1:1",
		"s1=127.0.0.1:1,s1=127.0.0.1:2",
		",",
	}
	for _, spec := range cases {
		if _, err := ParseAddressBook(spec); err == nil {
			t.Errorf("ParseAddressBook(%q) succeeded, want error", spec)
		}
	}
}

func TestParseVerifier(t *testing.T) {
	if _, err := ParseVerifier("zz"); err == nil {
		t.Error("invalid hex accepted")
	}
	if _, err := ParseVerifier(""); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := ParseVerifier("abcd"); err == nil {
		t.Error("short key accepted")
	}
	kp := sig.MustKeyPair()
	hexKey := ""
	for _, b := range kp.Verifier.PublicKey() {
		hexKey += string("0123456789abcdef"[b>>4]) + string("0123456789abcdef"[b&0xf])
	}
	verifier, err := ParseVerifier(hexKey)
	if err != nil {
		t.Fatalf("ParseVerifier(valid key): %v", err)
	}
	signature := kp.Signer.MustSign(1, types.Value("x"), nil)
	if err := verifier.Verify(1, types.Value("x"), nil, signature); err != nil {
		t.Errorf("round-tripped verifier rejected a valid signature: %v", err)
	}
}
