package main

import (
	"fmt"
	"strings"

	"fastread/internal/sig"
	"fastread/internal/transport/tcpnet"
	"fastread/internal/types"
)

// ParseAddressBook parses a comma-separated list of id=host:port pairs into
// an address book, e.g. "s1=10.0.0.1:7101,w=10.0.0.9:7200,r1=10.0.0.10:7201".
func ParseAddressBook(spec string) (tcpnet.AddressBook, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("an address book is required (-book id=host:port,...)")
	}
	book := make(tcpnet.AddressBook)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.SplitN(entry, "=", 2)
		if len(parts) != 2 || parts[1] == "" {
			return nil, fmt.Errorf("malformed address book entry %q (want id=host:port)", entry)
		}
		id, err := types.ParseProcessID(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("address book entry %q: %w", entry, err)
		}
		if _, dup := book[id]; dup {
			return nil, fmt.Errorf("duplicate address book entry for %s", id)
		}
		book[id] = strings.TrimSpace(parts[1])
	}
	if len(book) == 0 {
		return nil, fmt.Errorf("address book is empty")
	}
	return book, nil
}

// BookFromMembers converts a topology group's member map (textual process
// ids to host:port addresses) into an address book.
func BookFromMembers(members map[string]string) (tcpnet.AddressBook, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("the topology group has no members (socket transports need a per-group address book)")
	}
	book := make(tcpnet.AddressBook, len(members))
	for name, addr := range members {
		id, err := types.ParseProcessID(name)
		if err != nil {
			return nil, fmt.Errorf("member %q: %w", name, err)
		}
		if strings.TrimSpace(addr) == "" {
			return nil, fmt.Errorf("member %q has an empty address", name)
		}
		book[id] = strings.TrimSpace(addr)
	}
	return book, nil
}

// ParseVerifier decodes a hex-encoded ed25519 public key.
func ParseVerifier(hexKey string) (sig.Verifier, error) {
	if hexKey == "" {
		return sig.Verifier{}, fmt.Errorf("signature-verifying protocols require -writer-pubkey")
	}
	v, err := sig.VerifierFromHex(hexKey)
	if err != nil {
		return sig.Verifier{}, fmt.Errorf("-writer-pubkey: %w", err)
	}
	return v, nil
}
