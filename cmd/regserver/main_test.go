package main

import (
	"strings"
	"testing"

	"fastread/internal/transport/tcpnet"
	"fastread/internal/types"
)

// TestListenNodeTransports binds one node per transport on an ephemeral
// loopback port and checks the stats accessor works for each.
func TestListenNodeTransports(t *testing.T) {
	id := types.Server(1)
	book := tcpnet.AddressBook{id: "127.0.0.1:0"}
	for _, kind := range []string{"tcp", "udp"} {
		node, addr, stats, err := listenNode(kind, id, "", book)
		if err != nil {
			t.Fatalf("listenNode(%q): %v", kind, err)
		}
		if a := addr(); !strings.HasPrefix(a, "127.0.0.1:") || strings.HasSuffix(a, ":0") {
			t.Errorf("listenNode(%q) bound addr = %q, want ephemeral loopback port", kind, a)
		}
		if c := stats(); c != (nodeCounters{}) {
			t.Errorf("listenNode(%q) fresh counters = %+v, want zeros", kind, c)
		}
		if err := node.Close(); err != nil {
			t.Errorf("close %q node: %v", kind, err)
		}
	}
}

// TestListenNodeUnknown rejects transports outside tcp|udp.
func TestListenNodeUnknown(t *testing.T) {
	if _, _, _, err := listenNode("sctp", types.Server(1), "", nil); err == nil {
		t.Fatal("listenNode(sctp) succeeded, want error")
	}
}
