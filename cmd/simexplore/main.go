// Command simexplore is the deterministic-simulation explorer: it sweeps
// scenario × seed grids through the virtual-time runner, checks every
// recorded history against the protocol's correctness conditions, and
// shrinks any failure to a minimal reproducer with a one-line replay
// command.
//
//	simexplore                          # sweep the built-in templates, 64 seeds each
//	simexplore -seeds 256 -parallel 8   # the CI smoke sweep
//	simexplore -scenario restart-storm -seed 17          # replay one cell
//	simexplore -seed 17 -scenario-json '{...}'           # replay a shrunken scenario
//	simexplore -canary                  # prove the pipeline catches a broken protocol
//
// Exit status: 0 when everything passed (or, with -canary, when the canary
// was caught and shrunk), 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fastread/internal/sim"

	_ "fastread" // register the protocol drivers
)

func main() {
	var (
		scenarios    = flag.String("scenarios", strings.Join(sim.TemplateNames(), ","), "comma-separated template names to sweep")
		seeds        = flag.Int("seeds", 64, "seeds per scenario template")
		seedBase     = flag.Int64("seed-base", 1, "first seed of the sweep")
		seed         = flag.Int64("seed", 1, "seed for single-run modes (-scenario, -scenario-json, -canary)")
		scenario     = flag.String("scenario", "", "replay one template at -seed instead of sweeping")
		scenarioJSON = flag.String("scenario-json", "", "replay an inline JSON scenario at -seed instead of sweeping")
		parallel     = flag.Int("parallel", 0, "sweep workers (0 = GOMAXPROCS)")
		shrink       = flag.Bool("shrink", true, "shrink sweep failures to minimal reproducers")
		shrinkBudget = flag.Int("shrink-budget", 64, "max runs the shrinker may spend per failure")
		canary       = flag.Bool("canary", false, "run the deliberately-buggy canary: exit 0 iff its violation is caught and shrunk")
		verbose      = flag.Bool("v", false, "per-run progress output")
	)
	flag.Parse()

	switch {
	case *canary:
		os.Exit(runCanary(*seed, *shrinkBudget))
	case *scenarioJSON != "":
		sc, err := sim.ParseScenario([]byte(*scenarioJSON))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		os.Exit(replay(sc, *seed))
	case *scenario != "":
		t, ok := sim.TemplateByName(*scenario)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown scenario %q (have: %s)\n", *scenario, strings.Join(sim.TemplateNames(), ", "))
			os.Exit(2)
		}
		os.Exit(replay(t.Gen(*seed), *seed))
	default:
		os.Exit(sweep(*scenarios, *seeds, *seedBase, *parallel, *shrink, *shrinkBudget, *verbose))
	}
}

// replay runs one (scenario, seed) cell and reports it; exit 1 when the run
// fails — a replayed reproducer failing again is the expected outcome, and
// the status makes it scriptable either way.
func replay(sc sim.Scenario, seed int64) int {
	res := sim.Run(sc, seed)
	fmt.Printf("%s seed=%d: %d ops (%d completed, %d timed out, %d skips), sim %v in wall %v, mailbox high-water %d\n",
		res.Scenario.Name, seed, res.Ops, res.Completed, res.TimedOut, res.SubmitSkips,
		res.SimTime.Round(time.Millisecond), res.Wall.Round(time.Millisecond), res.MailboxHighWater)
	fmt.Printf("fingerprint %s\n", res.Fingerprint())
	if res.Failed() {
		fmt.Printf("FAIL: %s\n", res.FailureSummary())
		return 1
	}
	fmt.Println("ok: all histories check out")
	return 0
}

// sweep fans the scenario × seed grid across workers.
func sweep(scenarioCSV string, seeds int, seedBase int64, parallel int, shrinkFailures bool, budget int, verbose bool) int {
	var templates []sim.Template
	for _, name := range strings.Split(scenarioCSV, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		t, ok := sim.TemplateByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown scenario %q (have: %s)\n", name, strings.Join(sim.TemplateNames(), ", "))
			return 2
		}
		templates = append(templates, t)
	}
	jobs := sim.Jobs(templates, seeds, seedBase)
	opts := sim.SweepOptions{Parallel: parallel}
	if verbose {
		opts.Progress = func(done, total, failures int) {
			if done%50 == 0 || done == total {
				fmt.Printf("  %d/%d runs, %d failures\n", done, total, failures)
			}
		}
	}
	fmt.Printf("sweeping %d scenarios × %d seeds = %d runs\n", len(templates), seeds, len(jobs))
	res := sim.Sweep(jobs, opts)
	fmt.Printf("%d runs, %d ops, %d histories checked, %d failures, wall %v\n",
		res.Jobs, res.Ops, res.CheckedKeys, len(res.Failures), res.Wall.Round(time.Millisecond))
	if len(res.Failures) == 0 {
		return 0
	}
	for i, f := range res.Failures {
		fmt.Printf("\nFAIL %s seed=%d: %s\n", f.Scenario.Name, f.Seed, f.FailureSummary())
		if !shrinkFailures || i >= 3 {
			fmt.Printf("  replay: %s\n", sim.ReplayCommand(f.Scenario, f.Seed))
			continue
		}
		sr := sim.Shrink(f.Scenario, f.Seed, budget)
		if sr.Final == nil {
			fmt.Printf("  (failure did not reproduce under shrinking; replaying the original)\n")
			fmt.Printf("  replay: %s\n", sim.ReplayCommand(f.Scenario, f.Seed))
			continue
		}
		fmt.Printf("  shrunk in %d runs: %d→%d faults, %v→%v duration\n",
			sr.Runs, len(sr.Original.Faults), len(sr.Minimal.Faults), sr.Original.Duration, sr.Minimal.Duration)
		fmt.Printf("  minimal failure: %s\n", sr.Final.FailureSummary())
		fmt.Printf("  replay: %s\n", sr.ReplayCommand())
	}
	return 1
}

// runCanary verifies the detection pipeline end to end against the
// deliberately-broken protocol: the violation must be found AND shrink to a
// smaller scenario that still fails.
func runCanary(seed int64, budget int) int {
	sc := sim.CanaryScenario()
	res := sim.Run(sc, seed)
	if !res.Failed() {
		fmt.Printf("CANARY NOT CAUGHT: the buggy protocol produced no detected violation (seed %d)\n", seed)
		return 1
	}
	fmt.Printf("canary caught: %s\n", res.FailureSummary())
	sr := sim.Shrink(sc, seed, budget)
	if sr.Final == nil {
		fmt.Println("CANARY SHRINK FAILED: minimal scenario no longer reproduces")
		return 1
	}
	fmt.Printf("shrunk in %d runs: %d→%d faults, %v→%v duration; minimal still fails: %s\n",
		sr.Runs, len(sr.Original.Faults), len(sr.Minimal.Faults),
		sr.Original.Duration, sr.Minimal.Duration, sr.Final.FailureSummary())
	fmt.Printf("replay: %s\n", sr.ReplayCommand())
	return 0
}
