package fastread

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"fastread/internal/atomicity"
	"fastread/internal/history"
	"fastread/internal/types"
)

// driveRegister runs a small concurrent workload against one register: the
// register's writer writes distinct values while every reader reads, and all
// operations are recorded into the returned history.
func driveRegister(ctx context.Context, t *testing.T, reg *Register, writes, readsPerReader int) history.History {
	t.Helper()
	rec := history.NewRecorder()
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 1; j <= writes; j++ {
			v := types.Value(fmt.Sprintf("%s#v%d", reg.Key(), j))
			id := rec.Invoke(types.Writer(), history.OpWrite, v)
			if err := reg.Writer().Write(ctx, v); err != nil {
				rec.Fail(id)
				t.Errorf("key %q write %d: %v", reg.Key(), j, err)
				return
			}
			rec.Return(id, v, types.Timestamp(j))
		}
	}()
	for ri, rd := range reg.Readers() {
		wg.Add(1)
		go func(index int, reader Reader) {
			defer wg.Done()
			for j := 0; j < readsPerReader; j++ {
				id := rec.Invoke(types.Reader(index), history.OpRead, nil)
				res, err := reader.Read(ctx)
				if err != nil {
					rec.Fail(id)
					t.Errorf("key %q reader %d read %d: %v", reg.Key(), index, j, err)
					return
				}
				rec.Return(id, types.Value(res.Value), types.Timestamp(res.Version))
			}
		}(ri+1, rd)
	}
	wg.Wait()
	return rec.History()
}

// TestStoreManyKeysAtomicPerKey is the acceptance test of the multi-register
// refactor: a single deployment serves well over 100 distinct keys
// concurrently, and every key's history independently satisfies the paper's
// single-writer atomicity conditions. Values embed their key, so the checker
// (condition 1: a read returns ⊥ or a written value) also proves cross-key
// isolation — a value leaking from one register into another would be
// flagged as never-written.
func TestStoreManyKeysAtomicPerKey(t *testing.T) {
	scenarios := []struct {
		name string
		cfg  Config
	}{
		// ServerWorkers: 4 forces the key-sharded executor onto multiple
		// workers regardless of GOMAXPROCS, so per-key atomicity is checked
		// under genuinely parallel server execution.
		{"fast", Config{Servers: 7, Faulty: 1, Readers: 2, Protocol: ProtocolFast, ServerWorkers: 4}},
		{"abd", Config{Servers: 5, Faulty: 2, Readers: 2, Protocol: ProtocolABD, ServerWorkers: 4}},
	}
	const (
		keyCount       = 110
		writes         = 5
		readsPerReader = 6
	)
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			store, err := NewStore(sc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()

			histories := make([]history.History, keyCount)
			var wg sync.WaitGroup
			for i := 0; i < keyCount; i++ {
				reg, err := store.Register(fmt.Sprintf("key-%03d", i))
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(i int, reg *Register) {
					defer wg.Done()
					histories[i] = driveRegister(ctx, t, reg, writes, readsPerReader)
				}(i, reg)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			if got := len(store.Keys()); got != keyCount {
				t.Errorf("store serves %d keys, want %d", got, keyCount)
			}
			for i, h := range histories {
				report, err := atomicity.CheckSWMR(h)
				if err != nil {
					t.Fatalf("key %d: %v", i, err)
				}
				if !report.OK {
					t.Errorf("key %d violates atomicity:\n%s", i, report)
				}
				if report.Writes != writes || report.Reads != sc.cfg.Readers*readsPerReader {
					t.Errorf("key %d: checker saw %d writes, %d reads", i, report.Writes, report.Reads)
				}
			}

			stats := store.Stats()
			if want := int64(keyCount * writes); stats.Writes != want {
				t.Errorf("Stats.Writes = %d, want %d", stats.Writes, want)
			}
			if want := int64(keyCount * sc.cfg.Readers * readsPerReader); stats.Reads != want {
				t.Errorf("Stats.Reads = %d, want %d", stats.Reads, want)
			}
		})
	}
}

// TestStorePerKeyReadYourWrite checks the basic contract on a handful of
// registers for every protocol: a read that follows a completed write on the
// same register returns that write (or a newer one), and never another
// register's value.
func TestStorePerKeyReadYourWrite(t *testing.T) {
	protocols := []struct {
		name string
		cfg  Config
	}{
		{"fast", Config{Servers: 7, Faulty: 1, Readers: 1, Protocol: ProtocolFast}},
		{"fast-byz", Config{Servers: 11, Faulty: 1, Malicious: 1, Readers: 1, Protocol: ProtocolFastByzantine}},
		{"abd", Config{Servers: 5, Faulty: 2, Readers: 1, Protocol: ProtocolABD}},
		{"maxmin", Config{Servers: 5, Faulty: 2, Readers: 1, Protocol: ProtocolMaxMin}},
		{"regular", Config{Servers: 5, Faulty: 2, Readers: 1, Protocol: ProtocolRegular}},
	}
	for _, sc := range protocols {
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			store, err := NewStore(sc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			ctx := testCtx(t)

			keys := []string{"", "alpha", "beta", "nested/path/key", strings.Repeat("k", 64)}
			for round := 1; round <= 3; round++ {
				for _, key := range keys {
					reg, err := store.Register(key)
					if err != nil {
						t.Fatal(err)
					}
					want := fmt.Sprintf("%s=%d", key, round)
					if err := reg.Writer().Write(ctx, []byte(want)); err != nil {
						t.Fatalf("key %q round %d: write: %v", key, round, err)
					}
					reader, err := reg.Reader(1)
					if err != nil {
						t.Fatal(err)
					}
					res, err := reader.Read(ctx)
					if err != nil {
						t.Fatalf("key %q round %d: read: %v", key, round, err)
					}
					if string(res.Value) != want {
						t.Fatalf("key %q round %d: read %q, want %q", key, round, res.Value, want)
					}
				}
			}
		})
	}
}

// TestStoreRegisterIdempotent verifies that Register hands out the same
// stateful handles for the same key: the writer's timestamp sequence must
// not fork.
func TestStoreRegisterIdempotent(t *testing.T) {
	store, err := NewStore(Config{Servers: 4, Faulty: 1, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	a, err := store.Register("k")
	if err != nil {
		t.Fatal(err)
	}
	b, err := store.Register("k")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Register returned distinct handles for one key")
	}

	// Concurrent Register calls race for creation but must all converge on
	// one handle per key.
	const goroutines = 8
	results := make([]*Register, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reg, err := store.Register("contended")
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = reg
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent Register calls produced distinct handles")
		}
	}
}

func TestStoreKeyLimitsAndClose(t *testing.T) {
	store, err := NewStore(Config{Servers: 4, Faulty: 1, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := store.Register(strings.Repeat("x", MaxKeyLen)); err != nil {
		t.Errorf("key at the limit rejected: %v", err)
	}
	if _, err := store.Register(strings.Repeat("x", MaxKeyLen+1)); !errors.Is(err, ErrKeyTooLong) {
		t.Errorf("oversized key: got %v, want ErrKeyTooLong", err)
	}

	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Register("after-close"); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("Register after Close: got %v, want ErrStoreClosed", err)
	}
	// Close is idempotent.
	_ = store.Close()
}

// TestClusterIsDefaultRegister pins the backward-compatibility contract: a
// Cluster is the store's default (empty-key) register, and registers created
// through Cluster.Store() share its servers without disturbing it.
func TestClusterIsDefaultRegister(t *testing.T) {
	cluster, err := NewCluster(Config{Servers: 4, Faulty: 1, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx := testCtx(t)

	if err := cluster.Writer().Write(ctx, []byte("default")); err != nil {
		t.Fatal(err)
	}
	other, err := cluster.Store().Register("other")
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Writer().Write(ctx, []byte("elsewhere")); err != nil {
		t.Fatal(err)
	}

	reader, err := cluster.Reader(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := reader.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Value) != "default" {
		t.Fatalf("cluster read %q after writing to another register", res.Value)
	}

	def, err := cluster.Store().Register("")
	if err != nil {
		t.Fatal(err)
	}
	if def.Writer() != cluster.Writer() {
		t.Error("cluster writer is not the default register's writer")
	}
}

// TestStoreCrashToleranceAcrossKeys crashes one server and checks that every
// register keeps operating: the crash is shared infrastructure, not per-key.
func TestStoreCrashToleranceAcrossKeys(t *testing.T) {
	store, err := NewStore(Config{Servers: 7, Faulty: 1, Readers: 1, Protocol: ProtocolFast})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ctx := testCtx(t)

	if err := store.CrashServer(7); err != nil {
		t.Fatal(err)
	}
	if err := store.CrashServer(8); err == nil {
		t.Error("CrashServer accepted an out-of-range index")
	}
	for i := 0; i < 20; i++ {
		reg, err := store.Register(fmt.Sprintf("survivor-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Writer().Write(ctx, []byte("ok")); err != nil {
			t.Fatalf("key %d: write after crash: %v", i, err)
		}
		reader, _ := reg.Reader(1)
		res, err := reader.Read(ctx)
		if err != nil {
			t.Fatalf("key %d: read after crash: %v", i, err)
		}
		if string(res.Value) != "ok" {
			t.Fatalf("key %d: read %q", i, res.Value)
		}
	}
}
