package fastread

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastread/internal/workload"
)

// openLoopClient adapts a set of Register handles to the open-loop
// generator. The generator shards arrivals by key, so each handle only ever
// sees one submitter at a time — the single-writer discipline the handles
// require.
func openLoopClient(regs []*Register) workload.OpenLoopClient {
	writers := make([]Writer, len(regs))
	readers := make([]Reader, len(regs))
	for i, reg := range regs {
		writers[i] = reg.Writer()
		readers[i] = reg.Readers()[0]
	}
	return workload.OpenLoopClient{
		SubmitWrite: func(ctx context.Context, key int, seq int64) (func(context.Context) error, error) {
			wf, err := writers[key].WriteAsync(ctx, []byte(fmt.Sprintf("v%d", seq)))
			if err != nil {
				return nil, err
			}
			return wf.Result, nil
		},
		SubmitRead: func(ctx context.Context, key int) (func(context.Context) error, error) {
			rf, err := readers[key].ReadAsync(ctx)
			if err != nil {
				return nil, err
			}
			return func(ctx context.Context) error {
				_, err := rf.Result(ctx)
				return err
			}, nil
		},
	}
}

func registerRange(t *testing.T, store *Store, n int) []*Register {
	t.Helper()
	regs := make([]*Register, n)
	for i := range regs {
		reg, err := store.Register(fmt.Sprintf("load-%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		regs[i] = reg
	}
	return regs
}

// TestOverloadAcceptance is the acceptance test of the overload-control PR:
// sweep an in-memory deployment to find its knee, then drive it at 2× the
// knee rate with bounded queues and admission control, and check that the
// deployment degrades the way the ISSUE demands — server queues stay under
// their bound, goodput holds at ≥70% of the swept peak, and every missing
// operation is accounted for by an explicit shed/timeout/failure counter.
func TestOverloadAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("load sweep takes a few seconds")
	}
	const (
		keys  = 4
		bound = 128
	)
	// NetworkDelay makes the virtual round trip — not host CPU — the
	// capacity bottleneck, so the knee lands in the same place on a loaded
	// 1-CPU CI box as on a fast workstation. Capacity ≈ keys × depth/RTT =
	// 4 × 2/4ms ≈ 2000 ops/s. AdmissionWait (500µs) is deliberately below
	// the per-slot free gap (RTT/depth = 2ms) so that a saturated pipeline
	// fails fast with ErrOverloaded instead of silently throttling the
	// generator to the completion rate.
	store, err := NewStore(Config{
		Servers:       4,
		Faulty:        1,
		Readers:       1,
		Protocol:      ProtocolFast,
		ServerWorkers: 1,
		PipelineDepth: 2,
		NetworkDelay:  2 * time.Millisecond,
		AdmissionWait: 500 * time.Microsecond,
		QueueBound:    bound,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	client := openLoopClient(registerRange(t, store, keys))

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	base := workload.OpenLoopConfig{
		Duration:     400 * time.Millisecond,
		Poisson:      true,
		Seed:         42,
		Keys:         keys,
		ZipfS:        1.0,
		ReadFraction: 0.5,
		Workers:      keys,
		OpTimeout:    2 * time.Second,
	}
	points, err := workload.RunSweep(ctx, workload.SweepConfig{
		Base:         base,
		Rates:        []float64{300, 600, 1200},
		StepDuration: base.Duration,
		Settle:       50 * time.Millisecond,
	}, client)
	if err != nil {
		t.Fatal(err)
	}
	knee, ok := workload.Knee(points, 100*time.Millisecond)
	if !ok {
		t.Fatalf("no knee under 100ms p99 in sweep: %+v", points)
	}
	var peak float64
	for _, p := range points {
		if p.Goodput > peak {
			peak = p.Goodput
		}
	}
	t.Logf("sweep: knee at %.0f ops/s (p99 %.2fms), peak goodput %.0f ops/s",
		points[knee].OfferedRate, points[knee].P99ms, peak)

	// 2× the knee: the deployment must shed, not collapse.
	over := base
	over.Rate = 2 * points[knee].OfferedRate
	over.Duration = 600 * time.Millisecond
	over.Seed = 43
	res, err := workload.RunOpenLoop(ctx, over, client)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("2x knee (%.0f ops/s): completed=%d overloaded=%d timeouts=%d failed=%d overrun=%d goodput=%.0f",
		over.Rate, res.Completed, res.Overloaded, res.Timeouts, res.Failed, res.Overrun, res.Goodput())

	if got := res.Completed + res.Overloaded + res.Timeouts + res.Failed + res.Overrun; got != res.Offered {
		t.Errorf("accounting leak: offered %d but classified %d", res.Offered, got)
	}
	if res.Overloaded == 0 {
		t.Error("expected admission control to shed at 2x the knee, got 0 ErrOverloaded")
	}
	if res.Failed != 0 {
		t.Errorf("unexpected hard failures under overload: %d", res.Failed)
	}
	if g := res.Goodput(); g < 0.7*peak {
		t.Errorf("goodput collapsed under overload: %.0f ops/s < 70%% of peak %.0f", g, peak)
	}
	st := store.Stats()
	if st.MailboxHighWater > bound {
		t.Errorf("mailbox high water %d exceeds queue bound %d", st.MailboxHighWater, bound)
	}
}

// TestOverloadShedDropsAccounted forces a server-side queue overflow and
// checks the ShedDrops counter moves while every submitted operation still
// resolves — either completing (its quorum formed from the copies that were
// admitted) or failing its own deadline. Four writer handles burst
// signature-verified writes at five bound-8 server mailboxes; verification
// makes the drain genuinely slower than the arrival, so the overflow is not
// a timing accident.
func TestOverloadShedDropsAccounted(t *testing.T) {
	if testing.Short() {
		t.Skip("deadline drain takes a few seconds")
	}
	const (
		keys     = 4
		perKey   = 32
		bound    = 8
		deadline = 3 * time.Second
	)
	store, err := NewStore(Config{
		Servers:       8,
		Faulty:        1,
		Malicious:     1,
		Readers:       1,
		Protocol:      ProtocolFastByzantine,
		ServerWorkers: 1,
		PipelineDepth: perKey,
		QueueBound:    bound,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	regs := registerRange(t, store, keys)

	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()

	var (
		wg        sync.WaitGroup
		completed atomic.Int64
		errored   atomic.Int64
	)
	for _, reg := range regs {
		wg.Add(1)
		go func(w Writer) {
			defer wg.Done()
			futures := make([]*WriteFuture, 0, perKey)
			for i := 0; i < perKey; i++ {
				wf, err := w.WriteAsync(ctx, []byte(fmt.Sprintf("burst-%d", i)))
				if err != nil {
					errored.Add(1)
					continue
				}
				futures = append(futures, wf)
			}
			for _, wf := range futures {
				if err := wf.Result(ctx); err != nil {
					errored.Add(1)
				} else {
					completed.Add(1)
				}
			}
		}(reg.Writer())
	}
	wg.Wait()

	total := completed.Load() + errored.Load()
	if total != keys*perKey {
		t.Errorf("per-op accounting leak: %d submitted but %d resolved", keys*perKey, total)
	}
	if completed.Load() == 0 {
		t.Error("overload wedged the deployment: no write completed at all")
	}
	st := store.Stats()
	t.Logf("burst: completed=%d errored=%d shedDrops=%d highWater=%d",
		completed.Load(), errored.Load(), st.ShedDrops, st.MailboxHighWater)
	if st.ShedDrops == 0 {
		t.Error("expected bounded server mailboxes to shed under the burst, got ShedDrops == 0")
	}
}
