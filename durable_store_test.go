package fastread

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fastread/internal/atomicity"
	"fastread/internal/history"
	"fastread/internal/types"
)

// drivePhase runs one phase of a concurrent workload against a register into
// a SHARED recorder, so a test can interleave Store-level faults (restarts)
// between phases and still check the whole multi-phase history at once.
// Write j of this phase writes value "<key>#v<firstWrite+j>"; firstWrite
// therefore threads the writer's version sequence across phases.
func drivePhase(ctx context.Context, t *testing.T, rec *history.Recorder, reg *Register, firstWrite, writes, readsPerReader int) {
	t.Helper()
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 1; j <= writes; j++ {
			seq := firstWrite + j
			v := types.Value(fmt.Sprintf("%s#v%d", reg.Key(), seq))
			id := rec.Invoke(types.Writer(), history.OpWrite, v)
			if err := reg.Writer().Write(ctx, v); err != nil {
				rec.Fail(id)
				t.Errorf("key %q write %d: %v", reg.Key(), seq, err)
				return
			}
			rec.Return(id, v, types.Timestamp(seq))
		}
	}()
	for ri, rd := range reg.Readers() {
		wg.Add(1)
		go func(index int, reader Reader) {
			defer wg.Done()
			for j := 0; j < readsPerReader; j++ {
				id := rec.Invoke(types.Reader(index), history.OpRead, nil)
				res, err := reader.Read(ctx)
				if err != nil {
					rec.Fail(id)
					t.Errorf("key %q reader %d read %d: %v", reg.Key(), index, j, err)
					return
				}
				rec.Return(id, types.Value(res.Value), types.Timestamp(res.Version))
			}
		}(ri+1, rd)
	}
	wg.Wait()
}

// TestRestartServerRecoversDurableState is the acceptance test of the durable
// subsystem's Store wiring: a deployment with a data directory serves over
// 1000 writes, two servers are then restarted via RestartServer — with
// SimulateCrash the old incarnations' logs are cut at the last synced offset
// and recovery replays segments, exactly the kill -9 path — and the workload
// continues against the recovered servers. The combined pre/post-restart
// history must satisfy per-key atomicity, and the durable counters must show
// real recovery work (a second incarnation, records re-applied from disk).
//
// Safety argument for restarting under fsync=always: every acknowledged
// mutation was fsynced before the ack, so a simulated crash loses nothing a
// client observed — any number of restarts is sound.
func TestRestartServerRecoversDurableState(t *testing.T) {
	store, err := NewStore(Config{
		Servers: 5, Faulty: 1, Readers: 2, Protocol: ProtocolABD, ServerWorkers: 2,
		DataDir: t.TempDir(),
		Durability: DurabilityOptions{
			Fsync: FsyncAlways,
			// Small segments force rotation mid-workload, so recovery replays
			// a multi-segment log rather than one active file.
			SegmentBytes:  32 << 10,
			SimulateCrash: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	const (
		keyCount   = 8
		writesPre  = 130 // 8 × 130 = 1040 writes before any restart
		writesPost = 20
		readsPre   = 12
		readsPost  = 8
	)
	regs := make([]*Register, keyCount)
	recs := make([]*history.Recorder, keyCount)
	for i := range regs {
		if regs[i], err = store.Register(fmt.Sprintf("durable-%03d", i)); err != nil {
			t.Fatal(err)
		}
		recs[i] = history.NewRecorder()
	}
	phase := func(firstWrite, writes, readsPerReader int) {
		var wg sync.WaitGroup
		for i := range regs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				drivePhase(ctx, t, recs[i], regs[i], firstWrite, writes, readsPerReader)
			}(i)
		}
		wg.Wait()
	}

	phase(0, writesPre, readsPre)
	if t.Failed() {
		return
	}
	pre := store.Stats().Durable
	if pre.Appends == 0 || pre.Fsyncs == 0 {
		t.Fatalf("fsync=always workload logged nothing: %+v", pre)
	}
	if pre.Incarnation != 1 {
		t.Fatalf("pre-restart incarnation = %d, want 1", pre.Incarnation)
	}

	for _, srv := range []int{2, 5} {
		if err := store.RestartServer(srv); err != nil {
			t.Fatalf("RestartServer(%d): %v", srv, err)
		}
	}
	post := store.Stats().Durable
	if post.Incarnation != 2 {
		t.Errorf("post-restart incarnation = %d, want 2", post.Incarnation)
	}
	if post.RecordsRecovered == 0 {
		t.Error("restarted servers recovered no records from disk")
	}
	if post.SegmentsReplayed == 0 {
		t.Error("restarted servers replayed no segments")
	}

	// The restarted servers must serve pre-crash state immediately: with the
	// writer idle, a read of any key returns exactly its last written value.
	res, err := regs[0].Readers()[0].Read(ctx)
	if err != nil {
		t.Fatalf("post-restart read: %v", err)
	}
	if want := fmt.Sprintf("%s#v%d", regs[0].Key(), writesPre); string(res.Value) != want {
		t.Errorf("post-restart read = %q, want %q", res.Value, want)
	}

	phase(writesPre, writesPost, readsPost)
	if t.Failed() {
		return
	}

	histories := make(map[string]history.History, keyCount)
	for i, rec := range recs {
		histories[regs[i].Key()] = rec.History()
	}
	report, err := atomicity.CheckKeyed(histories, atomicity.CheckSWMR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK {
		t.Errorf("atomicity violated across restart for keys %v", report.FailedKeys())
	}
	if want := keyCount * (writesPre + writesPost); report.Writes != want {
		t.Errorf("checker saw %d writes, want %d", report.Writes, want)
	}
}

// TestRestartServerValidation pins the error contract: indexes outside the
// deployment are ErrUnknownServer, and a store without a data directory still
// restarts (the server just comes back empty-handed, which the in-memory
// protocols tolerate by design — quorums cover it, exactly like a crash).
func TestRestartServerValidation(t *testing.T) {
	store, err := NewStore(Config{
		Servers: 5, Faulty: 1, Readers: 1, Protocol: ProtocolABD,
		DataDir: t.TempDir(), Durability: DurabilityOptions{Fsync: FsyncNever},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	for _, bad := range []int{0, -1, 6} {
		if err := store.RestartServer(bad); !errors.Is(err, ErrUnknownServer) {
			t.Errorf("RestartServer(%d) = %v, want ErrUnknownServer", bad, err)
		}
	}
	if err := store.RestartServer(3); err != nil {
		t.Errorf("RestartServer(3): %v", err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.RestartServer(1); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("RestartServer after Close = %v, want ErrStoreClosed", err)
	}
}
