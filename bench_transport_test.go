package fastread

import (
	"context"
	"testing"

	"fastread/internal/core"
	"fastread/internal/quorum"
	"fastread/internal/transport"
	"fastread/internal/transport/tcpnet"
	"fastread/internal/types"
)

// BenchmarkTransport is the transport ablation from DESIGN.md §5: the same
// fast-register read measured over the in-memory channel network and over
// loopback TCP. The protocol code is identical; the difference is pure
// transport cost.
func BenchmarkTransport(b *testing.B) {
	cfg := quorum.Config{Servers: 4, Faulty: 1, Readers: 1}

	b.Run("InMemory", func(b *testing.B) {
		net := transport.NewInMemNetwork()
		defer net.Close()
		nodeFor := func(id types.ProcessID) transport.Node {
			node, err := net.Join(id)
			if err != nil {
				b.Fatal(err)
			}
			return node
		}
		benchmarkFastReadOverTransport(b, cfg, nodeFor)
	})

	b.Run("TCPLoopback", func(b *testing.B) {
		ids := []types.ProcessID{types.Writer(), types.Reader(1)}
		for i := 1; i <= cfg.Servers; i++ {
			ids = append(ids, types.Server(i))
		}
		nodes, _, err := tcpnet.LocalCluster(ids)
		if err != nil {
			b.Fatal(err)
		}
		defer func() {
			for _, n := range nodes {
				_ = n.Close()
			}
		}()
		nodeFor := func(id types.ProcessID) transport.Node { return nodes[id] }
		benchmarkFastReadOverTransport(b, cfg, nodeFor)
	})
}

// benchmarkFastReadOverTransport wires a fast-register deployment on the
// given transport and measures single-reader read latency.
func benchmarkFastReadOverTransport(b *testing.B, cfg quorum.Config, nodeFor func(types.ProcessID) transport.Node) {
	b.Helper()
	for i := 1; i <= cfg.Servers; i++ {
		srv, err := core.NewServer(core.ServerConfig{ID: types.Server(i), Readers: cfg.Readers}, nodeFor(types.Server(i)))
		if err != nil {
			b.Fatal(err)
		}
		srv.Start()
		b.Cleanup(srv.Stop)
	}
	writer, err := core.NewWriter(core.WriterConfig{Quorum: cfg}, nodeFor(types.Writer()))
	if err != nil {
		b.Fatal(err)
	}
	reader, err := core.NewReader(core.ReaderConfig{Quorum: cfg}, nodeFor(types.Reader(1)))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if err := writer.Write(ctx, types.Value("seed")); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reader.Read(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
