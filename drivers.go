package fastread

// The protocol implementations live behind the internal/driver registry;
// importing them here (and only here) registers every protocol the public
// API serves. Adding a protocol is adding its package's driver registration
// plus one line below — store.go itself contains no per-protocol code.
import (
	_ "fastread/internal/abd"     // registers "abd"
	_ "fastread/internal/core"    // registers "fast" and "fast-byz"
	_ "fastread/internal/maxmin"  // registers "maxmin"
	_ "fastread/internal/regular" // registers "regular"
)
