package fastread

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fastread/internal/driver"
	"fastread/internal/protoutil"
)

// Protocol selects which register implementation a Cluster runs.
type Protocol int

const (
	// ProtocolFast is the paper's fast crash-tolerant SWMR atomic register
	// (Figure 2): one round-trip per read and per write, requires
	// R < S/t − 2.
	ProtocolFast Protocol = iota + 1
	// ProtocolFastByzantine is the arbitrary-failure fast register
	// (Figure 5): writer-signed values, requires S > (R+2)t + (R+1)b.
	ProtocolFastByzantine
	// ProtocolABD is the classic two-round-read SWMR register of Attiya,
	// Bar-Noy and Dolev: requires only t < S/2 and supports any number of
	// readers, but reads cost two round-trips.
	ProtocolABD
	// ProtocolMaxMin is the decentralised variant sketched in the paper's
	// introduction: one client round-trip, but servers gossip with each
	// other before replying.
	ProtocolMaxMin
	// ProtocolRegular is a fast SWMR *regular* register: one round-trip,
	// any number of readers, t < S/2, but only regular (not atomic)
	// semantics.
	ProtocolRegular
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case ProtocolFast:
		return "fast"
	case ProtocolFastByzantine:
		return "fast-byz"
	case ProtocolABD:
		return "abd"
	case ProtocolMaxMin:
		return "maxmin"
	case ProtocolRegular:
		return "regular"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// Valid reports whether p is a defined protocol.
func (p Protocol) Valid() bool {
	return p >= ProtocolFast && p <= ProtocolRegular
}

// Config describes a register deployment.
type Config struct {
	// Servers is S, the number of server processes hosting the register.
	Servers int
	// Faulty is t, the maximum number of servers that may fail.
	Faulty int
	// Malicious is b ≤ t, the number of faulty servers that may behave
	// arbitrarily. Only meaningful for ProtocolFastByzantine.
	Malicious int
	// Readers is R, the number of reader processes.
	Readers int
	// Protocol selects the implementation; the zero value means
	// ProtocolFast. The implementation is resolved through the protocol
	// driver registry, so every protocol runs over every transport backend.
	Protocol Protocol
	// ProtocolName, when non-empty, selects the implementation by registry
	// name instead of Protocol — the escape hatch for drivers registered
	// outside the enum (test instrumentation such as internal/sim's
	// deliberately-buggy canary driver, or future external drivers). The
	// named driver must already be registered or NewStore reports
	// ErrUnknownProtocol.
	ProtocolName string
	// Transport selects the message-passing backend the deployment runs on;
	// nil means InMemory(). See Transport, InMemory and TCP. In a partitioned
	// deployment (Groups non-empty) this is the default backend FACTORY for
	// every group: each group still connects its own independent session from
	// it, so groups never share sockets, networks or failure domains.
	Transport Transport
	// Groups, when non-empty, partitions the keyspace across that many
	// independent replica groups instead of keeping every key on one server
	// set: a consistent-hash ring over the group names assigns each register
	// key an owning group (Store.GroupOf), Register routes to it before the
	// protocol driver is involved, and each group is a complete deployment of
	// its own — own transport session, own S servers, own writer/reader
	// identities, own quorum math — instantiated lazily on the first Register
	// of a key it owns. Per-register atomicity composes across groups because
	// they are disjoint: a key's operations only ever touch its group's
	// servers, so each group is exactly the single-group deployment the
	// paper's proofs cover. Group names are part of the placement function —
	// every process of a deployment must use the same ordered list (see
	// internal/topology). Empty means the classic single-group deployment.
	Groups []GroupSpec
	// ServerWorkers is the number of key-shard workers each server process
	// runs: its messages are dispatched by register key across that many
	// goroutines, so distinct keys execute in parallel while every key keeps
	// FIFO, single-goroutine handling (see internal/transport.Executor).
	// Zero or negative means GOMAXPROCS — except in NewCluster, which
	// rewrites zero to 1 (a lone register's traffic all hashes to one shard;
	// pass a negative value there to force GOMAXPROCS workers).
	ServerWorkers int
	// PipelineDepth bounds the operations ONE handle keeps in flight through
	// the async API (Writer.WriteAsync / Reader.ReadAsync): a submission
	// beyond the depth blocks until an in-flight operation completes. Zero
	// or negative selects the default (16); values above 512 are clamped —
	// servers bound their per-client bookkeeping assuming live operations
	// span a limited nonce window. Serial Read/Write are the depth-one case
	// and are unaffected by the setting.
	PipelineDepth int
	// AdmissionWait, when positive, turns the pipeline's at-depth blocking
	// into admission control: a WriteAsync/ReadAsync (or serial Write/Read)
	// that cannot get an in-flight slot within the budget fails fast with
	// ErrOverloaded instead of queueing indefinitely. Under offered load
	// beyond capacity this is what keeps client latency bounded — the
	// excess is shed and counted rather than stacked into queues (see the
	// "Latency under load" section of the README). Zero (the default)
	// keeps the block-until-free behaviour.
	AdmissionWait time.Duration
	// QueueBound, when positive, caps each SERVER's inbound queues — the
	// in-memory transport mailbox and every executor worker's overflow
	// queue — at that many messages: deliveries beyond the cap are shed
	// and counted in Stats.ShedDrops instead of growing the queue, so
	// server memory, queueing delay and MailboxHighWater stay bounded
	// under overload. Shedding a request is as safe as a lossy network:
	// the protocols tolerate loss via quorum slack and client
	// retry/timeout. Client-side queues are never bounded by this knob
	// (dropping acknowledgements can starve a completable quorum). Zero
	// (the default) keeps every queue unbounded.
	QueueBound int
	// RouteBound, when positive, additionally caps each client demux
	// route's overflow queue (shed-and-count into Stats.ShedDrops). A
	// bounded route can drop quorum-completing acknowledgements — the
	// operation then waits for its context or AdmissionWait budget — so
	// this is off by default and exists for deployments that must bound
	// client-side memory too; most overload control wants QueueBound +
	// AdmissionWait only.
	RouteBound int
	// DisableBatching turns off the in-memory transport's delivery batching
	// (the node pumps' coalescing of consecutive same-sender messages into
	// one wire.Batch handoff). Batching is on by default and is purely a
	// throughput optimisation — per-link FIFO order and delivery accounting
	// are identical either way; the switch exists for A/B measurement. The
	// TCP backend's frame batching and the servers' per-run acknowledgement
	// coalescing are always on. In-memory backend only.
	DisableBatching bool
	// NetworkDelay, when non-zero, adds a uniform one-way delivery delay to
	// every message of the in-memory network, which makes round-trip counts
	// directly visible in operation latency. In-memory backend only; the
	// WithDelay transport option is the equivalent on InMemory().
	NetworkDelay time.Duration
	// Jitter adds a random extra delay in [0, Jitter) to each delivery.
	// In-memory backend only (see WithJitter).
	Jitter time.Duration
	// Seed seeds the network's randomness; runs with equal seeds and
	// schedules see equal jitter. In-memory backend only (see WithSeed).
	Seed int64
	// NonceSource, when non-nil, supplies the initial operation counter for
	// each reader handle the store creates, replacing the wall-clock default
	// (see internal/protoutil.InitialNonce). Deterministic simulation plugs
	// in virtual-clock microseconds so identical seeds produce identical
	// wire traffic; the source must preserve the restart-incarnation
	// ordering (later handles get larger nonces) or restarted readers
	// starve on the servers' stale-request guard.
	NonceSource func() int64
	// DataDir, when non-empty, makes every server process durable: each gets
	// a private write-ahead segment log plus periodic snapshots under
	// DataDir/<group>/s<index> (see internal/durable), mutations are logged
	// before they are acknowledged, and Store.RestartServer recovers a
	// server's state and incarnation counter from its directory. Empty keeps
	// the classic in-memory-only servers, with zero persistence cost.
	DataDir string
	// Durability tunes the write-ahead logs of a durable deployment (DataDir
	// non-empty); the zero value selects the defaults described on each
	// field. Ignored when DataDir is empty.
	Durability DurabilityOptions
	// Byzantine replaces the listed servers (by 1-based index) with
	// malicious implementations exhibiting the given behaviours, for
	// adversarial testing. The replacements understand the fast protocols'
	// message vocabulary; combine with ProtocolFastByzantine and a
	// deployment satisfying its bound (b ≥ number of entries here) to
	// assert safety holds, or with ProtocolFast to demonstrate where it
	// breaks. In-memory backend recommended (the behaviours are
	// transport-agnostic, but the adversarial schedules that make them
	// interesting are not reproducible over sockets).
	Byzantine map[int]ByzantineBehavior
}

// GroupSpec describes one replica group of a partitioned deployment (see
// Config.Groups). The zero values of the quorum fields inherit the
// deployment-level Config, so a homogeneous fleet is just a list of names:
//
//	Groups: []GroupSpec{{Name: "g0"}, {Name: "g1"}, {Name: "g2"}, {Name: "g3"}}
type GroupSpec struct {
	// Name identifies the group on the placement ring; required, and unique
	// within the deployment. Renaming a group moves its keys.
	Name string
	// Servers (S), Faulty (t) and Malicious (b) are the group's quorum
	// parameters; zero inherits the deployment-level value. Groups may
	// differ — a hot slice of the keyspace can run wider than a cold one —
	// and each group's shape is validated against the protocol's bound at
	// NewStore.
	Servers   int
	Faulty    int
	Malicious int
	// Transport gives the group its own backend; nil inherits
	// Config.Transport (and ultimately InMemory()). Socket deployments with
	// STATIC address books need a per-group Transport here — every group
	// binds the same process identities (s1..sS, w, r1..rR), so sharing one
	// pinned book would collide. Ephemeral-port books (nil/partial) and the
	// in-memory backend share fine: each group's session allocates its own
	// endpoints.
	Transport Transport
}

// FsyncPolicy selects when a durable server forces its appended log records
// to stable storage (Config.Durability.Fsync).
type FsyncPolicy string

const (
	// FsyncAlways fsyncs inside every append, before the client is
	// acknowledged: nothing acknowledged is ever lost, at one fsync per
	// mutation.
	FsyncAlways FsyncPolicy = "always"
	// FsyncIntervalPolicy fsyncs on a background ticker (the default): a
	// crash loses at most Durability.FsyncInterval of acknowledged writes.
	FsyncIntervalPolicy FsyncPolicy = "interval"
	// FsyncNever leaves flushing to the OS page cache: a process crash is
	// survivable (the kernel still holds the writes), a machine crash is not.
	FsyncNever FsyncPolicy = "never"
)

// DurabilityOptions tunes the write-ahead logs of a durable deployment
// (Config.DataDir non-empty). The zero value selects every default.
type DurabilityOptions struct {
	// Fsync is the flush policy; empty means FsyncIntervalPolicy. See the
	// FsyncPolicy constants for what each trades away.
	Fsync FsyncPolicy
	// FsyncInterval is the FsyncIntervalPolicy period; 0 means 100ms.
	FsyncInterval time.Duration
	// SegmentBytes rotates a server's active log segment past this size;
	// 0 means 4MiB.
	SegmentBytes int64
	// SnapshotEvery triggers a background snapshot (which truncates dead log
	// segments) after that many appends; 0 means 4096, negative disables the
	// automatic trigger (deterministic simulation does this — the background
	// goroutine's timing is wall-clock).
	SnapshotEvery int
	// Epoch is the topology epoch stamped into every segment and snapshot
	// header; recovery REFUSES state written under a different epoch, so a
	// reconfigured deployment cannot silently resurrect pre-reconfiguration
	// registers. See internal/topology.Topology.Epoch.
	Epoch uint64
	// SimulateCrash makes every server shutdown model a machine crash
	// instead of a graceful close: the active segment is truncated back to
	// its last-fsynced offset and no final flush or snapshot runs. This is
	// the fault-injection knob Store.RestartServer and internal/sim build
	// on; production deployments leave it false.
	SimulateCrash bool
}

// DurableStats summarises the write-ahead and recovery work of a durable
// deployment's logs; all fields are zero when Config.DataDir is empty.
type DurableStats struct {
	// Appends counts log records written; Fsyncs the stable-storage flushes
	// they cost (compare the two to see a policy's amortisation).
	Appends, Fsyncs int64
	// Snapshots counts snapshot runs and SnapshotRecords the state records
	// they wrote.
	Snapshots, SnapshotRecords int64
	// SegmentsReplayed, RecordsRecovered and TornTailTrims describe recovery
	// work: log segments read back, records re-applied to server state, and
	// torn final records trimmed (a trim is a crash mid-append doing exactly
	// what it should — only unacknowledged-or-unsynced suffix is lost).
	SegmentsReplayed, RecordsRecovered, TornTailTrims int64
	// AppendErrors counts appends that hit an I/O error (sticky per log).
	AppendErrors int64
	// Incarnation is the highest restart-incarnation counter among the
	// servers (aggregated as a maximum — it is an identity, not a tally).
	Incarnation uint64
}

// ByzantineBehavior selects what a server listed in Config.Byzantine does
// instead of following the protocol. The behaviours mirror
// internal/fault's library.
type ByzantineBehavior int

const (
	// ByzantineForgeTimestamp replies with an enormous forged timestamp and
	// a value the writer never wrote, signed with a non-writer key.
	ByzantineForgeTimestamp ByzantineBehavior = iota + 1
	// ByzantineStaleReplay always replies with the initial state (ts=0).
	ByzantineStaleReplay
	// ByzantineMemoryLoss behaves honestly except towards reader 1, to
	// which it replies as if it had never received any message.
	ByzantineMemoryLoss
	// ByzantineInflateSeen claims every client is in its seen set, trying
	// to trick the fast-read predicate into holding early.
	ByzantineInflateSeen
	// ByzantineMute receives but never replies.
	ByzantineMute
	// ByzantineFlood answers every request with a burst of fabricated stale
	// acknowledgements followed by one honest reply, stressing the
	// receive-path backlog machinery as well as the ack filters.
	ByzantineFlood
)

// Errors returned by the façade.
var (
	// ErrTooManyReaders indicates a fast-register configuration that
	// violates the paper's bound (R ≥ S/t − 2, or its Byzantine analogue).
	// It is the driver registry's sentinel, re-exported so callers match it
	// on the public package.
	ErrTooManyReaders = driver.ErrTooManyReaders
	// ErrUnknownProtocol indicates an invalid Protocol value.
	ErrUnknownProtocol = errors.New("fastread: unknown protocol")
	// ErrUnknownReader indicates a reader index outside [1, R].
	ErrUnknownReader = errors.New("fastread: unknown reader index")
	// ErrUnknownServer indicates a server index outside [1, S].
	ErrUnknownServer = errors.New("fastread: unknown server index")
	// ErrOverloaded indicates an operation was shed by admission control:
	// the handle's pipeline stayed at depth past the Config.AdmissionWait
	// budget, so the submission failed fast without consuming a slot or
	// touching the wire. The caller may retry later; under sustained
	// overload, backing off is the point. Match with errors.Is.
	ErrOverloaded = protoutil.ErrOverloaded
)

// ReadResult is the outcome of a read operation.
type ReadResult struct {
	// Value is the value read; nil means the register still holds its
	// initial value ⊥.
	Value []byte
	// Version is the logical timestamp of the returned value (0 for ⊥).
	Version int64
	// RoundTrips is the number of client↔server round-trips the read used:
	// 1 for the fast, max-min and regular protocols, 2 for ABD.
	RoundTrips int
	// UsedFallback is true when a fast read returned the previous value
	// because the seen-set predicate did not hold for the newest one.
	UsedFallback bool
}

// Writer is the write handle of a register.
type Writer interface {
	// Write stores value in the register. The value must be non-nil (nil is
	// reserved for the initial value ⊥). Write is WriteAsync at depth one:
	// submit, then wait.
	Write(ctx context.Context, value []byte) error
	// WriteAsync submits a write and returns its future without waiting for
	// the quorum, keeping up to Config.PipelineDepth writes of this handle
	// in flight. Writes are APPLIED in submission order regardless of
	// pipeline depth — each submission takes the next timestamp and is
	// broadcast before WriteAsync returns — so the register's single-writer
	// semantics survive pipelining. At depth, the call blocks until an
	// in-flight write completes.
	WriteAsync(ctx context.Context, value []byte) (*WriteFuture, error)
}

// Reader is the read handle of a register.
type Reader interface {
	// Read returns the current register value. Read is ReadAsync at depth
	// one: submit, then wait.
	Read(ctx context.Context) (ReadResult, error)
	// ReadAsync submits a read and returns its future without waiting for
	// the quorum, keeping up to Config.PipelineDepth reads of this handle in
	// flight. Each in-flight read is an independent operation: cancelling
	// one (via the ctx given here or to Result) never disturbs its siblings.
	// At depth, the call blocks until an in-flight read completes.
	ReadAsync(ctx context.Context) (*ReadFuture, error)
}

// WriteFuture is one submitted write's pending resolution.
type WriteFuture struct {
	store *Store
	f     driver.WriteFuture
}

// Done closes when the write resolves; Result then returns immediately.
func (w *WriteFuture) Done() <-chan struct{} { return w.f.Done() }

// Result blocks until the write resolves and returns its outcome. If ctx
// ends first, the write's wait is abandoned (the value may still take
// effect, like any interrupted write) and the context's error returned. A
// future severed by Store.Close resolves with ErrStoreClosed.
func (w *WriteFuture) Result(ctx context.Context) error {
	return w.store.mapHandleErr(w.f.Result(ctx))
}

// ReadFuture is one submitted read's pending resolution.
type ReadFuture struct {
	store *Store
	f     driver.ReadFuture
}

// Done closes when the read resolves; Result then returns immediately.
func (r *ReadFuture) Done() <-chan struct{} { return r.f.Done() }

// Result blocks until the read resolves and returns its outcome. If ctx
// ends first, the read is aborted (sibling in-flight reads are untouched)
// and the context's error returned. A future severed by Store.Close
// resolves with ErrStoreClosed.
func (r *ReadFuture) Result(ctx context.Context) (ReadResult, error) {
	res, err := r.f.Result(ctx)
	if err != nil {
		return ReadResult{}, r.store.mapHandleErr(err)
	}
	return publicReadResult(res), nil
}

// publicReadResult converts a driver result to the public shape.
func publicReadResult(res driver.ReadResult) ReadResult {
	return ReadResult{
		Value:        res.Value,
		Version:      int64(res.Timestamp),
		RoundTrips:   res.RoundTrips,
		UsedFallback: res.UsedFallback,
	}
}

// Stats summarises the work performed through a cluster's clients.
type Stats struct {
	Writes          int64
	Reads           int64
	WriteRoundTrips int64
	ReadRoundTrips  int64
	FallbackReads   int64
	DeliveredMsgs   int
	DroppedMsgs     int
	// FramesDelivered counts transport frames: on the TCP backend, wire
	// frames read off sockets (a batch frame carries many protocol
	// messages, so under pipelined load FramesDelivered ≪ DeliveredMsgs —
	// frames per operation below 1 is the batching working); on the
	// in-memory backend there is no frame concept and it equals
	// DeliveredMsgs.
	FramesDelivered int
	// SendDrops counts outbound messages the transport discarded: a peer's
	// bounded write queue overflowing (TCP), the outbound datagram queue
	// overflowing or an unreachable destination (UDP). The protocols tolerate
	// these as in-transit losses; the counter makes overload visible.
	SendDrops int
	// InboundDrops counts messages discarded at a full inbox on the
	// receiving side. DroppedMsgs is the sum of SendDrops, InboundDrops and
	// DedupDrops.
	InboundDrops int
	// DedupDrops counts datagrams the UDP backend's per-sender at-most-once
	// windows rejected as duplicates or stale replays; always zero on the
	// other backends.
	DedupDrops int
	// MailboxHighWater is the deepest any process's inbound queue has ever
	// been. By default the in-memory transport never drops on overload —
	// the asynchronous model forbids blocking a sender — so sustained
	// overload shows up here as unbounded growth; a bench or simulation
	// that ends with a high-water mark far above PipelineDepth × clients
	// was queueing, not keeping up. With Config.QueueBound set, server
	// mailboxes cap at the bound (so the mark stays at or under it) and
	// the overflow moves to ShedDrops. In-memory backend only; socket
	// backends report 0 (their bounded queues surface overload as
	// SendDrops/InboundDrops instead).
	MailboxHighWater int
	// ShedDrops counts messages shed by the opt-in overload bounds —
	// bounded server mailboxes and executor queues (Config.QueueBound) and
	// bounded client routes (Config.RouteBound). Always 0 without those
	// knobs. Together with client-side ErrOverloaded rejections (which the
	// caller observes directly), this is the exact account of where
	// offered load beyond capacity went.
	ShedDrops       int64
	ServerMutations int64
	ReadRoundsPerOp  float64
	WriteRoundsPerOp float64
	// Durable aggregates every server's write-ahead-log counters across the
	// deployment (Config.DataDir); all zero for in-memory-only deployments.
	Durable DurableStats
	// Groups breaks the deployment's traffic down per replica group, one
	// entry per group in configuration order (a single-group deployment
	// reports one "default" entry). Groups not yet instantiated report zero
	// counters.
	Groups []GroupStats
}

// GroupStats is one replica group's share of a partitioned deployment's
// Stats: how many keys the ring has routed to it so far, its operation
// counts, and its transport session's drop and queueing counters (the
// deployment-wide fields of Stats are the aggregates of these).
type GroupStats struct {
	// Group is the replica group's name.
	Group string
	// Keys counts the registers this store has handed out that the ring
	// placed on this group.
	Keys int
	// Writes, Reads and Ops (their sum) count completed operations on the
	// group's registers.
	Writes, Reads, Ops int64
	// SendDrops, InboundDrops and DedupDrops are the group session's drop
	// counters; MailboxHighWater its deepest inbound queue (in-memory
	// backend only). See the same-named Stats fields.
	SendDrops, InboundDrops, DedupDrops int
	MailboxHighWater                    int
	// ShedDrops counts messages shed by this group's opt-in overload
	// bounds (Config.QueueBound / Config.RouteBound); see Stats.ShedDrops.
	ShedDrops int64
	// Durable aggregates the group's servers' write-ahead-log counters
	// (zero when Config.DataDir is empty or the group is uninstantiated).
	Durable DurableStats
}
